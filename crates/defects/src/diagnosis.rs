//! Cell-aware diagnosis: ranking candidate defects from tester responses.
//!
//! The paper's motivating application (references \[1], \[4], \[6] there):
//! given the pass/fail signature a failing die shows on the applied cell
//! patterns, rank the cell-internal defect classes by how well they
//! explain the observation. A perfect match means the signature equals
//! the class's detection row restricted to the applied patterns.

use crate::model::CaModel;

/// One observed pattern outcome on the tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Index of the applied stimulus in the model's canonical order.
    pub stimulus: usize,
    /// Whether the cell output mismatched expectation (failed).
    pub failed: bool,
}

/// A scored diagnosis candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the defect class in the model.
    pub class: usize,
    /// Observations explained (signature bits matching the class row).
    pub matched: usize,
    /// Observed failures the class cannot produce (fatal for the
    /// candidate under the single-defect assumption).
    pub unexplained_fails: usize,
    /// Predicted failures the tester did not see (possible with
    /// marginal/resistive defects; penalized, not fatal).
    pub missed_predictions: usize,
}

impl Candidate {
    /// Whether the candidate explains the signature exactly.
    pub fn is_perfect(&self, num_observations: usize) -> bool {
        self.matched == num_observations
    }
}

/// Ranks defect classes against a tester signature.
///
/// Candidates with unexplained failures are excluded (a single defect
/// cannot fail a pattern its class does not detect); the rest are sorted
/// by (matched desc, missed predictions asc, class index asc).
pub fn diagnose(model: &CaModel, observations: &[Observation]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (ci, class) in model.classes.iter().enumerate() {
        let mut matched = 0;
        let mut unexplained_fails = 0;
        let mut missed_predictions = 0;
        for obs in observations {
            let predicted = class.row.get(obs.stimulus);
            match (obs.failed, predicted) {
                (true, true) | (false, false) => matched += 1,
                (true, false) => unexplained_fails += 1,
                (false, true) => missed_predictions += 1,
            }
        }
        if unexplained_fails == 0 && observations.iter().any(|o| o.failed) {
            out.push(Candidate {
                class: ci,
                matched,
                unexplained_fails,
                missed_predictions,
            });
        }
    }
    out.sort_by(|a, b| {
        b.matched
            .cmp(&a.matched)
            .then(a.missed_predictions.cmp(&b.missed_predictions))
            .then(a.class.cmp(&b.class))
    });
    out
}

/// Finds a stimulus on which the two classes predict different outcomes,
/// preferring stimuli not in `already_applied` — the adaptive-diagnosis
/// step that refines an ambiguous candidate list.
pub fn distinguishing_stimulus(
    model: &CaModel,
    class_a: usize,
    class_b: usize,
    already_applied: &[usize],
) -> Option<usize> {
    let a = &model.classes[class_a].row;
    let b = &model.classes[class_b].row;
    (0..a.len())
        .filter(|&s| a.get(s) != b.get(s))
        .find(|s| !already_applied.contains(s))
        .or_else(|| (0..a.len()).find(|&s| a.get(s) != b.get(s)))
}

/// Builds the signature a given defect class would produce over
/// `stimuli` — useful for tests and for simulating customer returns.
pub fn signature_of(model: &CaModel, class: usize, stimuli: &[usize]) -> Vec<Observation> {
    stimuli
        .iter()
        .map(|&s| Observation {
            stimulus: s,
            failed: model.classes[class].row.get(s),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenerateOptions;
    use crate::patterns::select_patterns;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn model() -> CaModel {
        let cell = spice::parse_cell(NAND2).unwrap();
        CaModel::generate(&cell, GenerateOptions::default())
    }

    #[test]
    fn injected_class_ranks_first_on_full_signature() {
        let model = model();
        let all: Vec<usize> = (0..model.stimuli().len()).collect();
        for class in 0..model.classes.len() {
            if model.classes[class].behavior == crate::Behavior::Undetectable {
                continue;
            }
            let signature = signature_of(&model, class, &all);
            let candidates = diagnose(&model, &signature);
            assert!(!candidates.is_empty());
            let top = &candidates[0];
            assert!(top.is_perfect(signature.len()));
            // The true class is among the perfect matches (equivalent
            // classes are indistinguishable by definition, but rows are
            // unique per class, so it is exactly first here).
            assert_eq!(top.class, class);
        }
    }

    #[test]
    fn partial_signature_keeps_true_class_as_candidate() {
        let model = model();
        let selected = select_patterns(&model);
        for class in 0..model.classes.len() {
            if model.classes[class].behavior == crate::Behavior::Undetectable {
                continue;
            }
            let signature = signature_of(&model, class, &selected.selected);
            if !signature.iter().any(|o| o.failed) {
                continue;
            }
            let candidates = diagnose(&model, &signature);
            assert!(
                candidates.iter().any(|c| c.class == class),
                "class {class} missing from candidates"
            );
        }
    }

    #[test]
    fn distinguishing_stimulus_separates_distinct_classes() {
        let model = model();
        for a in 0..model.classes.len() {
            for b in (a + 1)..model.classes.len() {
                let s = distinguishing_stimulus(&model, a, b, &[])
                    .expect("distinct classes have distinct rows");
                assert_ne!(model.classes[a].row.get(s), model.classes[b].row.get(s));
            }
        }
    }

    #[test]
    fn adaptive_diagnosis_converges_to_the_true_class() {
        let model = model();
        let all: Vec<usize> = (0..model.stimuli().len()).collect();
        for class in 0..model.classes.len() {
            if model.classes[class].behavior == crate::Behavior::Undetectable {
                continue;
            }
            // Start with a minimal pattern set; refine while ambiguous.
            let selected = crate::patterns::select_patterns(&model);
            let mut applied = selected.selected.clone();
            for _ in 0..all.len() {
                let signature = signature_of(&model, class, &applied);
                if !signature.iter().any(|o| o.failed) {
                    // The defect escapes this set entirely (cannot happen
                    // for the covering set, but keep the guard).
                    applied.push(all[applied.len() % all.len()]);
                    continue;
                }
                let candidates = diagnose(&model, &signature);
                let perfect: Vec<&Candidate> = candidates
                    .iter()
                    .filter(|c| c.is_perfect(signature.len()))
                    .collect();
                if perfect.len() <= 1 {
                    assert_eq!(perfect[0].class, class);
                    break;
                }
                let extra =
                    distinguishing_stimulus(&model, perfect[0].class, perfect[1].class, &applied)
                        .expect("separable");
                applied.push(extra);
            }
        }
    }

    #[test]
    fn all_pass_signature_yields_no_candidates() {
        let model = model();
        let signature: Vec<Observation> = (0..4)
            .map(|s| Observation {
                stimulus: s,
                failed: false,
            })
            .collect();
        assert!(diagnose(&model, &signature).is_empty());
    }

    #[test]
    fn unexplained_failures_disqualify() {
        let model = model();
        // Fail a pattern that class 0 does not detect.
        let class0_misses = (0..model.stimuli().len())
            .find(|&s| !model.classes[0].row.get(s))
            .unwrap();
        let signature = vec![Observation {
            stimulus: class0_misses,
            failed: true,
        }];
        let candidates = diagnose(&model, &signature);
        assert!(candidates.iter().all(|c| c.class != 0));
    }
}
