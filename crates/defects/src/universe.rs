//! Defect universe enumeration.
//!
//! The intra-transistor universe of the paper (§IV): for every transistor,
//! terminal opens on drain/gate/source and pairwise terminal shorts
//! (drain-source, gate-source, gate-drain) — six defects per device, each
//! simulated under every stimulus to discover its static/dynamic behaviour.
//! Inter-transistor net-net shorts are available as an extension.

use ca_netlist::{Cell, NetKind, Terminal, TransistorId};
use ca_sim::Injection;
use std::fmt;

/// Index of a defect within its [`DefectUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefectId(pub u32);

impl DefectId {
    /// Returns the id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DefectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Coarse defect category (the paper's "defect type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DefectKind {
    /// Resistive/full open.
    Open,
    /// Bridge/short.
    Short,
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectKind::Open => write!(f, "open"),
            DefectKind::Short => write!(f, "short"),
        }
    }
}

/// One potential defect of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Defect {
    /// Position in the universe.
    pub id: DefectId,
    /// Category.
    pub kind: DefectKind,
    /// Simulator-level description.
    pub injection: Injection,
}

impl Defect {
    /// Human-readable label using the cell's own names.
    pub fn label(&self, cell: &Cell) -> String {
        match self.injection {
            Injection::None => "free".to_string(),
            Injection::Open {
                transistor,
                terminal,
            } => format!("{}.{} open", cell.transistor(transistor).name(), terminal),
            Injection::Short { transistor, a, b } => {
                format!("{}.{}-{} short", cell.transistor(transistor).name(), a, b)
            }
            Injection::NetShort { a, b } => {
                format!("{}-{} short", cell.net(a).name(), cell.net(b).name())
            }
        }
    }
}

/// The complete list of defects considered for one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefectUniverse {
    defects: Vec<Defect>,
}

impl DefectUniverse {
    /// The paper's default universe: six intra-transistor defects per
    /// device (three terminal opens, three terminal-terminal shorts).
    pub fn intra_transistor(cell: &Cell) -> DefectUniverse {
        let mut defects = Vec::with_capacity(cell.num_transistors() * 6);
        let mut push = |kind, injection| {
            let id = DefectId(defects.len() as u32);
            defects.push(Defect {
                id,
                kind,
                injection,
            });
        };
        for (tid, _) in cell.transistor_ids() {
            for terminal in Terminal::CHANNEL_AND_GATE {
                push(
                    DefectKind::Open,
                    Injection::Open {
                        transistor: tid,
                        terminal,
                    },
                );
            }
            for (a, b) in [
                (Terminal::Drain, Terminal::Source),
                (Terminal::Gate, Terminal::Source),
                (Terminal::Gate, Terminal::Drain),
            ] {
                push(
                    DefectKind::Short,
                    Injection::Short {
                        transistor: tid,
                        a,
                        b,
                    },
                );
            }
        }
        DefectUniverse { defects }
    }

    /// Extends the intra-transistor universe with shorts between every pair
    /// of non-rail nets (the paper's inter-transistor defects, §IV —
    /// representable but not part of its experiments).
    pub fn with_inter_transistor(cell: &Cell) -> DefectUniverse {
        let mut universe = DefectUniverse::intra_transistor(cell);
        let candidates: Vec<_> = cell
            .nets()
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.kind().is_rail())
            .map(|(i, _)| ca_netlist::NetId(i as u32))
            .collect();
        for (i, &a) in candidates.iter().enumerate() {
            for &b in &candidates[i + 1..] {
                let id = DefectId(universe.defects.len() as u32);
                universe.defects.push(Defect {
                    id,
                    kind: DefectKind::Short,
                    injection: Injection::NetShort { a, b },
                });
            }
        }
        universe
    }

    /// Rebuilds a universe from an explicit defect list (e.g. loaded from
    /// a `.cam` document).
    ///
    /// # Errors
    ///
    /// Returns a message when ids are not dense and ascending.
    pub fn from_defects(defects: Vec<Defect>) -> Result<DefectUniverse, String> {
        for (i, d) in defects.iter().enumerate() {
            if d.id.index() != i {
                return Err(format!("defect id {} at position {i}", d.id));
            }
        }
        Ok(DefectUniverse { defects })
    }

    /// A copy keeping only the first `n` defects (ids stay dense). Used
    /// by budgeted generation, where `max_defects` truncates the
    /// universe a degraded model covers.
    pub fn truncated(&self, n: usize) -> DefectUniverse {
        DefectUniverse {
            defects: self.defects[..n.min(self.defects.len())].to_vec(),
        }
    }

    /// All defects in id order.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// Number of defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// The defect with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn defect(&self, id: DefectId) -> &Defect {
        &self.defects[id.index()]
    }

    /// Defects affecting `transistor` (intra-transistor defects only).
    pub fn of_transistor(&self, transistor: TransistorId) -> Vec<&Defect> {
        self.defects
            .iter()
            .filter(|d| match d.injection {
                Injection::Open { transistor: t, .. } | Injection::Short { transistor: t, .. } => {
                    t == transistor
                }
                _ => false,
            })
            .collect()
    }
}

/// Number of internal (non-rail, non-pin) nets — a proxy for layout
/// complexity used by reporting.
pub fn internal_net_count(cell: &Cell) -> usize {
    cell.nets()
        .iter()
        .filter(|n| n.kind() == NetKind::Internal)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn six_defects_per_transistor() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        assert_eq!(universe.len(), 4 * 6);
        let opens = universe
            .defects()
            .iter()
            .filter(|d| d.kind == DefectKind::Open)
            .count();
        assert_eq!(opens, 12);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        for (i, d) in universe.defects().iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
    }

    #[test]
    fn per_transistor_lookup() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let mn0 = cell.find_transistor("MN0").unwrap();
        assert_eq!(universe.of_transistor(mn0).len(), 6);
    }

    #[test]
    fn inter_transistor_adds_net_shorts() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::with_inter_transistor(&cell);
        // Non-rail nets: A, B, Z, net0 -> C(4,2) = 6 extra shorts.
        assert_eq!(universe.len(), 24 + 6);
    }

    #[test]
    fn labels_use_cell_names() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let labels: Vec<String> = universe.defects().iter().map(|d| d.label(&cell)).collect();
        assert!(labels.contains(&"MN0.D open".to_string()));
        assert!(labels.contains(&"MP1.D-S short".to_string()));
    }
}
