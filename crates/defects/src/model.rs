//! The CA model: the end product of cell-aware characterization.
//!
//! A [`CaModel`] is the cell-internal fault dictionary the paper's flows
//! produce: for each defect (class), its behaviour and the set of
//! detecting stimuli. [`CaModel::generate`] is the library's *conventional
//! flow* (paper Fig. 1): exhaustive defect simulation, equivalence
//! classing, synthesis into the dictionary. The ML flow produces the same
//! type through prediction (see `ca-core`), which is what makes
//! paper-vs-ML accuracy comparisons direct.

use crate::classes::{equivalence_classes, Behavior, DefectClass};
use crate::table::{BitRow, DetectionTable};
use crate::universe::{DefectId, DefectUniverse};
use ca_netlist::Cell;
use ca_sim::{DetectionPolicy, SimBudget, SimError, Stimulus};

/// Options of CA model generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GenerateOptions {
    /// Detection policy for unknown responses.
    pub policy: DetectionPolicy,
    /// Also enumerate inter-transistor net shorts.
    pub inter_transistor: bool,
}

/// A cell-aware model: the detection dictionary of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CaModel {
    /// Name of the characterized cell.
    pub cell_name: String,
    /// Number of primary inputs (fixes the canonical stimulus order).
    pub num_inputs: usize,
    /// Number of transistors.
    pub num_transistors: usize,
    /// The defect universe the model covers.
    pub universe: DefectUniverse,
    /// Per-defect detection rows (aligned with the universe).
    pub rows: Vec<BitRow>,
    /// Equivalence classes over the universe.
    pub classes: Vec<DefectClass>,
    /// Simulation effort spent building the model (0 for predicted models).
    pub defect_simulations: usize,
    /// Whether the model was produced under a reduced budget (truncated
    /// stimuli, truncated defect universe, or a characterization retry).
    /// Degraded models are valid but incomplete; library export skips
    /// them unless explicitly included.
    pub degraded: bool,
}

impl CaModel {
    /// Runs the conventional (simulation-based) generation flow.
    pub fn generate(cell: &Cell, options: GenerateOptions) -> CaModel {
        let universe = if options.inter_transistor {
            DefectUniverse::with_inter_transistor(cell)
        } else {
            DefectUniverse::intra_transistor(cell)
        };
        let table = DetectionTable::generate_exhaustive(cell, &universe, options.policy);
        let classes = equivalence_classes(&universe, &table);
        CaModel {
            cell_name: cell.name().to_string(),
            num_inputs: cell.num_inputs(),
            num_transistors: cell.num_transistors(),
            rows: table.rows().to_vec(),
            defect_simulations: table.defect_simulations(),
            universe,
            classes,
            degraded: false,
        }
    }

    /// Runs the conventional flow under a [`SimBudget`].
    ///
    /// Truncating budgets (`max_stimuli`, `max_defects`) yield a valid
    /// but [`degraded`](CaModel::degraded) model covering the truncated
    /// work; an oscillating golden cell or an expired wall clock is an
    /// error.
    pub fn generate_budgeted(
        cell: &Cell,
        options: GenerateOptions,
        budget: &SimBudget,
    ) -> Result<CaModel, SimError> {
        let universe = if options.inter_transistor {
            DefectUniverse::with_inter_transistor(cell)
        } else {
            DefectUniverse::intra_transistor(cell)
        };
        let stimuli = Stimulus::all(cell.num_inputs());
        let budgeted =
            DetectionTable::generate_budgeted(cell, &universe, &stimuli, options.policy, budget)?;
        let universe = universe.truncated(budgeted.defects_covered);
        let classes = equivalence_classes(&universe, &budgeted.table);
        Ok(CaModel {
            cell_name: cell.name().to_string(),
            num_inputs: cell.num_inputs(),
            num_transistors: cell.num_transistors(),
            rows: budgeted.table.rows().to_vec(),
            defect_simulations: budgeted.table.defect_simulations(),
            universe,
            classes,
            degraded: budgeted.degraded,
        })
    }

    /// Builds a model from externally produced rows (e.g. ML predictions).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not aligned with `universe`.
    pub fn from_rows(cell: &Cell, universe: DefectUniverse, rows: Vec<BitRow>) -> CaModel {
        assert_eq!(rows.len(), universe.len(), "rows/universe mismatch");
        let stimuli = Stimulus::all(cell.num_inputs());
        let static_count = stimuli.iter().filter(|s| s.is_static()).count();
        // Rebuild classes from the provided rows.
        let classes = {
            use std::collections::BTreeMap;
            let mut by_row: BTreeMap<&BitRow, Vec<DefectId>> = BTreeMap::new();
            for d in universe.defects() {
                by_row.entry(&rows[d.id.index()]).or_default().push(d.id);
            }
            let mut classes: Vec<DefectClass> = by_row
                .into_iter()
                .map(|(row, mut members)| {
                    members.sort();
                    // Degraded rows may cover fewer stimuli than the
                    // canonical set; classify over what is present.
                    let static_hit = (0..static_count.min(row.len())).any(|i| row.get(i));
                    let behavior = if static_hit {
                        Behavior::Static
                    } else if row.any() {
                        Behavior::Dynamic
                    } else {
                        Behavior::Undetectable
                    };
                    DefectClass {
                        representative: members[0],
                        members,
                        behavior,
                        row: row.clone(),
                    }
                })
                .collect();
            classes.sort_by_key(|c| c.representative);
            classes
        };
        CaModel {
            cell_name: cell.name().to_string(),
            num_inputs: cell.num_inputs(),
            num_transistors: cell.num_transistors(),
            rows,
            defect_simulations: 0,
            universe,
            classes,
            degraded: false,
        }
    }

    /// The canonical stimulus list the rows are aligned with.
    pub fn stimuli(&self) -> Vec<Stimulus> {
        Stimulus::all(self.num_inputs)
    }

    /// Detection row of `defect`.
    pub fn row(&self, defect: DefectId) -> &BitRow {
        &self.rows[defect.index()]
    }

    /// Whether stimulus index `stimulus` detects `defect`.
    pub fn detects(&self, defect: DefectId, stimulus: usize) -> bool {
        self.rows[defect.index()].get(stimulus)
    }

    /// Fraction of defects detectable by at least one stimulus.
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().filter(|r| r.any()).count() as f64 / self.rows.len() as f64
    }

    /// Counts classes by behaviour: `(static, dynamic, undetectable)`.
    pub fn behavior_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.classes {
            match c.behavior {
                Behavior::Static => counts.0 += 1,
                Behavior::Dynamic => counts.1 += 1,
                Behavior::Undetectable => counts.2 += 1,
            }
        }
        counts
    }

    /// Bit-level agreement between two models of the same shape, in
    /// `[0, 1]` — the paper's *prediction accuracy* when one side is
    /// predicted.
    ///
    /// # Panics
    ///
    /// Panics if the models have different universe or stimulus sizes.
    pub fn agreement(&self, other: &CaModel) -> f64 {
        self.agreement_filtered(other, |_| true)
    }

    /// Like [`CaModel::agreement`], restricted to one defect category —
    /// the paper reports opens and shorts separately (§V.A).
    ///
    /// # Panics
    ///
    /// See [`CaModel::agreement`].
    pub fn agreement_of_kind(&self, other: &CaModel, kind: crate::DefectKind) -> f64 {
        self.agreement_filtered(other, |d| d.kind == kind)
    }

    /// Agreement over the defects selected by `filter`.
    ///
    /// # Panics
    ///
    /// See [`CaModel::agreement`].
    pub fn agreement_filtered(
        &self,
        other: &CaModel,
        mut filter: impl FnMut(&crate::Defect) -> bool,
    ) -> f64 {
        assert_eq!(self.rows.len(), other.rows.len(), "universe size mismatch");
        let mut total = 0usize;
        let mut same = 0usize;
        for defect in self.universe.defects() {
            if !filter(defect) {
                continue;
            }
            let a = &self.rows[defect.id.index()];
            let b = &other.rows[defect.id.index()];
            assert_eq!(a.len(), b.len(), "stimulus count mismatch");
            for i in 0..a.len() {
                total += 1;
                if a.get(i) == b.get(i) {
                    same += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn generate_builds_complete_model() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        assert_eq!(model.cell_name, "NAND2");
        assert_eq!(model.num_inputs, 2);
        assert_eq!(model.universe.len(), 24);
        assert_eq!(model.rows.len(), 24);
        assert!(model.defect_simulations > 0);
        assert!((model.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budgeted_generation_unlimited_matches_plain() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let plain = CaModel::generate(&cell, GenerateOptions::default());
        let budgeted =
            CaModel::generate_budgeted(&cell, GenerateOptions::default(), &SimBudget::unlimited())
                .expect("NAND2 characterizes");
        assert_eq!(plain, budgeted);
        assert!(!budgeted.degraded);
    }

    #[test]
    fn budgeted_generation_truncates_and_marks_degraded() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let budget = SimBudget {
            max_stimuli: Some(4), // statics only for a 2-input cell
            max_defects: Some(12),
            ..SimBudget::unlimited()
        };
        let model = CaModel::generate_budgeted(&cell, GenerateOptions::default(), &budget)
            .expect("truncation is not an error");
        assert!(model.degraded);
        assert_eq!(model.universe.len(), 12);
        assert_eq!(model.rows.len(), 12);
        assert!(model.rows.iter().all(|r| r.len() == 4));
        // Static-only characterization sees no dynamic classes.
        let (_, dynamic, _) = model.behavior_counts();
        assert_eq!(dynamic, 0);
    }

    #[test]
    fn budgeted_generation_propagates_wall_clock_exhaustion() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let budget = SimBudget {
            wall_clock: Some(std::time::Duration::ZERO),
            ..SimBudget::unlimited()
        };
        let err = CaModel::generate_budgeted(&cell, GenerateOptions::default(), &budget)
            .expect_err("zero deadline cannot finish");
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn agreement_with_self_is_one() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        assert!((model.agreement(&model) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_drops_when_rows_flip() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let mut rows = model.rows.clone();
        let flipped = !rows[0].get(0);
        rows[0].set(0, flipped);
        let altered = CaModel::from_rows(&cell, model.universe.clone(), rows);
        let total = 24.0 * 16.0;
        let expected = (total - 1.0) / total;
        assert!((model.agreement(&altered) - expected).abs() < 1e-12);
        assert_eq!(altered.defect_simulations, 0);
    }

    #[test]
    fn behavior_counts_sum_to_class_count() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let (s, d, u) = model.behavior_counts();
        assert_eq!(s + d + u, model.classes.len());
        assert!(s > 0 && d > 0);
    }

    #[test]
    fn serde_round_trip_via_debug_shape() {
        // Serialize/deserialize through serde's derived impls using the
        // in-memory JSON-ish representation from serde_test-free check:
        // a simple clone-compare guards the derives compile and equality.
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let copy = model.clone();
        assert_eq!(model, copy);
    }
}
