//! Cell-aware test pattern selection.
//!
//! A CA model's downstream consumer is ATPG: it needs a small set of cell
//! input stimuli that still detects every detectable defect class. This
//! module implements greedy set-cover selection with static-first
//! preference (static patterns are cheaper to apply than two-pattern
//! dynamic tests) plus coverage accounting — the "detection conditions"
//! product the paper's Fig. 1 synthesizes into the CA model.

use crate::classes::Behavior;
use crate::model::CaModel;
use ca_sim::Stimulus;

/// A selected pattern set with its bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSet {
    /// Indices into the canonical stimulus order of the model.
    pub selected: Vec<usize>,
    /// For each defect class (model order), the index within `selected`
    /// of the pattern chosen to detect it, or `None` if undetectable.
    pub class_pattern: Vec<Option<usize>>,
    /// Number of detectable classes.
    pub detectable: usize,
}

impl PatternSet {
    /// Fraction of detectable classes covered by the selection (1.0 for a
    /// complete greedy run).
    pub fn class_coverage(&self) -> f64 {
        if self.detectable == 0 {
            return 1.0;
        }
        let covered = self.class_pattern.iter().filter(|p| p.is_some()).count();
        covered as f64 / self.detectable as f64
    }

    /// The selected stimuli, resolved against the model's stimulus order.
    pub fn stimuli(&self, model: &CaModel) -> Vec<Stimulus> {
        let all = model.stimuli();
        self.selected.iter().map(|&i| all[i].clone()).collect()
    }
}

/// Greedy set cover: repeatedly picks the stimulus detecting the most
/// still-uncovered classes; ties prefer static stimuli, then lower index.
pub fn select_patterns(model: &CaModel) -> PatternSet {
    let stimuli = model.stimuli();
    let n_stimuli = stimuli.len();
    let classes = &model.classes;
    let mut uncovered: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.behavior != Behavior::Undetectable)
        .map(|(i, _)| i)
        .collect();
    let detectable = uncovered.len();
    let mut selected: Vec<usize> = Vec::new();
    let mut class_pattern: Vec<Option<usize>> = vec![None; classes.len()];
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize, bool)> = None; // (count, stim, is_static)
        #[allow(clippy::needless_range_loop)] // s is a stimulus id, not a position
        for s in 0..n_stimuli {
            let count = uncovered.iter().filter(|&&c| classes[c].row.get(s)).count();
            if count == 0 {
                continue;
            }
            let is_static = stimuli[s].is_static();
            let better = match best {
                None => true,
                Some((bc, _, bs)) => count > bc || (count == bc && is_static && !bs),
            };
            if better {
                best = Some((count, s, is_static));
            }
        }
        let Some((_, stim, _)) = best else {
            break; // nothing detects the rest (cannot happen for valid models)
        };
        let sel_idx = selected.len();
        selected.push(stim);
        uncovered.retain(|&c| {
            if classes[c].row.get(stim) {
                class_pattern[c] = Some(sel_idx);
                false
            } else {
                true
            }
        });
    }
    PatternSet {
        selected,
        class_pattern,
        detectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenerateOptions;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn nand2_model() -> (ca_netlist::Cell, CaModel) {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        (cell, model)
    }

    #[test]
    fn covers_every_detectable_class() {
        let (_, model) = nand2_model();
        let set = select_patterns(&model);
        assert!((set.class_coverage() - 1.0).abs() < 1e-12);
        assert!(set.detectable > 0);
    }

    #[test]
    fn selection_is_much_smaller_than_exhaustive() {
        let (_, model) = nand2_model();
        let set = select_patterns(&model);
        assert!(
            set.selected.len() <= 8,
            "selected {} of 16",
            set.selected.len()
        );
    }

    #[test]
    fn chosen_patterns_really_detect_their_classes() {
        let (_, model) = nand2_model();
        let set = select_patterns(&model);
        for (c, slot) in set.class_pattern.iter().enumerate() {
            if let Some(sel_idx) = slot {
                let stim = set.selected[*sel_idx];
                assert!(model.classes[c].row.get(stim));
            } else {
                assert_eq!(model.classes[c].behavior, Behavior::Undetectable);
            }
        }
    }

    #[test]
    fn dynamic_classes_require_dynamic_patterns() {
        let (_, model) = nand2_model();
        let set = select_patterns(&model);
        let stimuli = model.stimuli();
        let mut needed_dynamic = false;
        for (c, slot) in set.class_pattern.iter().enumerate() {
            if model.classes[c].behavior == Behavior::Dynamic {
                let stim = set.selected[slot.expect("dynamic classes are detectable")];
                assert!(!stimuli[stim].is_static());
                needed_dynamic = true;
            }
        }
        assert!(needed_dynamic, "NAND2 has stuck-open classes");
    }

    #[test]
    fn stimuli_accessor_resolves() {
        let (_, model) = nand2_model();
        let set = select_patterns(&model);
        assert_eq!(set.stimuli(&model).len(), set.selected.len());
    }
}
