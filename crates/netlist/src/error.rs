//! Error type shared by all netlist operations.

use std::fmt;

/// Errors raised while parsing, building or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A SPICE source line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The netlist references a net that was never declared.
    UnknownNet(String),
    /// The netlist references a transistor that does not exist.
    UnknownTransistor(String),
    /// The cell failed a structural validation check.
    Invalid(String),
    /// A duplicate name was encountered where names must be unique.
    Duplicate(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UnknownNet(name) => write!(f, "unknown net `{name}`"),
            NetlistError::UnknownTransistor(name) => write!(f, "unknown transistor `{name}`"),
            NetlistError::Invalid(msg) => write!(f, "invalid netlist: {msg}"),
            NetlistError::Duplicate(name) => write!(f, "duplicate name `{name}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = NetlistError::Parse {
            line: 3,
            message: "missing terminal".into(),
        };
        assert_eq!(err.to_string(), "parse error at line 3: missing terminal");
        assert_eq!(
            NetlistError::UnknownNet("X".into()).to_string(),
            "unknown net `X`"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
