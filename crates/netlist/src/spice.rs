//! SPICE/CDL subcircuit parser.
//!
//! Parses a `.SUBCKT`/`.ENDS` block with MOS device lines (`M...`) into a
//! validated [`Cell`]. Handles comments (`*`, `$`-suffixes), `+`
//! continuation lines, case-insensitive keywords and `W=`/`L=` parameters
//! with the usual SI suffixes.
//!
//! Pin roles are inferred:
//! - rails are recognized by name (`VDD`/`VCC`/`PWR`/`VDD!` vs
//!   `VSS`/`GND`/`0`/`VSS!`), overridable via [`ParseOptions`];
//! - a pin connected to at least one channel terminal (drain/source) is an
//!   output;
//! - a pin connected only to gates is an input.

use crate::error::NetlistError;
use crate::model::{Cell, CellBuilder, MosKind, NetKind};
use std::collections::BTreeMap;

/// Options controlling rail recognition and device sizing defaults.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Names (upper-cased) recognized as the power rail.
    pub power_names: Vec<String>,
    /// Names (upper-cased) recognized as the ground rail.
    pub ground_names: Vec<String>,
    /// Width used when a device carries no `W=` parameter, in nanometres.
    pub default_width_nm: u32,
    /// Length used when a device carries no `L=` parameter, in nanometres.
    pub default_length_nm: u32,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions {
            power_names: ["VDD", "VCC", "PWR", "VDD!", "VPWR"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ground_names: ["VSS", "GND", "0", "VSS!", "VGND"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            default_width_nm: 100,
            default_length_nm: 30,
        }
    }
}

/// Parses the first subcircuit found in `src` with default options.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input and
/// [`NetlistError::Invalid`] when the subcircuit violates cell invariants
/// (no input pin, no rails, ...).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cell = ca_netlist::spice::parse_cell(
///     ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS",
/// )?;
/// assert_eq!(cell.name(), "INV");
/// # Ok(())
/// # }
/// ```
pub fn parse_cell(src: &str) -> Result<Cell, NetlistError> {
    parse_cell_with(src, &ParseOptions::default())
}

/// Parses the first subcircuit found in `src` with explicit options.
///
/// # Errors
///
/// See [`parse_cell`].
pub fn parse_cell_with(src: &str, options: &ParseOptions) -> Result<Cell, NetlistError> {
    let cells = parse_library_with(src, options)?;
    cells.into_iter().next().ok_or_else(|| NetlistError::Parse {
        line: 1,
        message: "no .SUBCKT block found".into(),
    })
}

/// Parses every subcircuit in `src` with default options.
///
/// # Errors
///
/// See [`parse_cell`].
pub fn parse_library(src: &str) -> Result<Vec<Cell>, NetlistError> {
    parse_library_with(src, &ParseOptions::default())
}

/// Parses every subcircuit in `src` with explicit options.
///
/// # Errors
///
/// See [`parse_cell`].
pub fn parse_library_with(src: &str, options: &ParseOptions) -> Result<Vec<Cell>, NetlistError> {
    let lines = logical_lines(src);
    let mut cells = Vec::new();
    let mut current: Option<SubcktAccum> = None;
    for (line_no, line) in lines {
        let upper = line.to_ascii_uppercase();
        if upper.starts_with(".SUBCKT") {
            if current.is_some() {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "nested .SUBCKT is not supported".into(),
                });
            }
            current = Some(SubcktAccum::start(&line, line_no)?);
        } else if upper.starts_with(".ENDS") {
            let accum = current.take().ok_or(NetlistError::Parse {
                line: line_no,
                message: ".ENDS without matching .SUBCKT".into(),
            })?;
            cells.push(accum.finish(options)?);
        } else if let Some(accum) = current.as_mut() {
            accum.push_device_line(&line, line_no, options)?;
        }
        // Lines outside subcircuits (e.g. global statements) are ignored.
    }
    if current.is_some() {
        return Err(NetlistError::Parse {
            line: 0,
            message: "unterminated .SUBCKT block".into(),
        });
    }
    Ok(cells)
}

/// Joins `+` continuation lines and strips comments; returns
/// `(line_number, text)` pairs for non-empty logical lines.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let mut text = raw.trim().to_string();
        if text.is_empty() || text.starts_with('*') {
            continue;
        }
        if let Some(pos) = text.find('$') {
            text.truncate(pos);
            text = text.trim_end().to_string();
            if text.is_empty() {
                continue;
            }
        }
        if let Some(rest) = text.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest.trim());
                continue;
            }
        }
        out.push((line_no, text));
    }
    out
}

struct DeviceLine {
    name: String,
    drain: String,
    gate: String,
    source: String,
    bulk: String,
    kind: MosKind,
    width_nm: u32,
    length_nm: u32,
}

struct SubcktAccum {
    name: String,
    pins: Vec<String>,
    devices: Vec<DeviceLine>,
}

impl SubcktAccum {
    fn start(line: &str, line_no: usize) -> Result<SubcktAccum, NetlistError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(NetlistError::Parse {
                line: line_no,
                message: ".SUBCKT requires a name and at least one pin".into(),
            });
        }
        Ok(SubcktAccum {
            name: tokens[1].to_string(),
            pins: tokens[2..].iter().map(|s| s.to_string()).collect(),
            devices: Vec::new(),
        })
    }

    fn push_device_line(
        &mut self,
        line: &str,
        line_no: usize,
        options: &ParseOptions,
    ) -> Result<(), NetlistError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];
        let first = head.chars().next().unwrap_or(' ').to_ascii_uppercase();
        if first != 'M' && first != 'X' {
            // Capacitors, resistors and other elements are ignored: the
            // switch-level model does not use them.
            return Ok(());
        }
        // CDL convention: `XM0 ...` wraps a MOS instance.
        let name = head.to_string();
        if tokens.len() < 6 {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("device `{name}` needs 4 terminals and a model"),
            });
        }
        let (drain, gate, source, bulk, model) =
            (tokens[1], tokens[2], tokens[3], tokens[4], tokens[5]);
        let kind = classify_model(model).ok_or(NetlistError::Parse {
            line: line_no,
            message: format!("cannot classify MOS model `{model}` as NMOS or PMOS"),
        })?;
        let mut width_nm = options.default_width_nm;
        let mut length_nm = options.default_length_nm;
        for token in &tokens[6..] {
            let upper = token.to_ascii_uppercase();
            if let Some(value) = upper.strip_prefix("W=") {
                width_nm = parse_dimension_nm(value, line_no)?;
            } else if let Some(value) = upper.strip_prefix("L=") {
                length_nm = parse_dimension_nm(value, line_no)?;
            }
        }
        self.devices.push(DeviceLine {
            name,
            drain: drain.to_string(),
            gate: gate.to_string(),
            source: source.to_string(),
            bulk: bulk.to_string(),
            kind,
            width_nm,
            length_nm,
        });
        Ok(())
    }

    fn finish(self, options: &ParseOptions) -> Result<Cell, NetlistError> {
        // Determine which pins see a channel terminal (outputs) vs gates
        // only (inputs).
        let mut drives_channel: BTreeMap<&str, bool> = BTreeMap::new();
        for device in &self.devices {
            *drives_channel.entry(device.drain.as_str()).or_default() = true;
            *drives_channel.entry(device.source.as_str()).or_default() = true;
            drives_channel.entry(device.gate.as_str()).or_default();
        }
        let mut builder = CellBuilder::new(&self.name);
        for pin in &self.pins {
            let upper = pin.to_ascii_uppercase();
            let kind = if options.power_names.contains(&upper) {
                NetKind::Power
            } else if options.ground_names.contains(&upper) {
                NetKind::Ground
            } else if drives_channel.get(pin.as_str()).copied().unwrap_or(false) {
                NetKind::Output
            } else {
                NetKind::Input
            };
            builder.add_net(pin, kind);
        }
        for device in &self.devices {
            let mut net = |name: &str| {
                let upper = name.to_ascii_uppercase();
                let kind = if options.power_names.contains(&upper) {
                    NetKind::Power
                } else if options.ground_names.contains(&upper) {
                    NetKind::Ground
                } else {
                    NetKind::Internal
                };
                builder.add_net(name, kind)
            };
            let d = net(&device.drain);
            let g = net(&device.gate);
            let s = net(&device.source);
            let b = net(&device.bulk);
            builder.add_transistor(
                &device.name,
                device.kind,
                d,
                g,
                s,
                b,
                device.width_nm,
                device.length_nm,
            )?;
        }
        builder.build()
    }
}

/// Classifies a SPICE model name as NMOS or PMOS.
fn classify_model(model: &str) -> Option<MosKind> {
    let lower = model.to_ascii_lowercase();
    const PMOS_TAGS: [&str; 6] = ["pch", "pmos", "pfet", "pe", "p_", "ptrans"];
    const NMOS_TAGS: [&str; 6] = ["nch", "nmos", "nfet", "ne", "n_", "ntrans"];
    if PMOS_TAGS.iter().any(|t| lower.starts_with(t)) {
        return Some(MosKind::Pmos);
    }
    if NMOS_TAGS.iter().any(|t| lower.starts_with(t)) {
        return Some(MosKind::Nmos);
    }
    match lower.chars().next() {
        Some('p') => Some(MosKind::Pmos),
        Some('n') => Some(MosKind::Nmos),
        _ => None,
    }
}

/// Parses a dimension like `200N`, `0.2U`, `3E-08`, returning nanometres.
fn parse_dimension_nm(value: &str, line_no: usize) -> Result<u32, NetlistError> {
    let value = value.trim();
    let (digits, scale) = match value.chars().last() {
        Some('N') => (&value[..value.len() - 1], 1.0),
        Some('U') => (&value[..value.len() - 1], 1e3),
        Some('M') => (&value[..value.len() - 1], 1e6),
        _ => (value, 1e9), // plain metres
    };
    let parsed: f64 = digits.parse().map_err(|_| NetlistError::Parse {
        line: line_no,
        message: format!("cannot parse dimension `{value}`"),
    })?;
    let nm = parsed * scale;
    if !(0.0..=u32::MAX as f64).contains(&nm) {
        return Err(NetlistError::Parse {
            line: line_no,
            message: format!("dimension `{value}` out of range"),
        });
    }
    Ok(nm.round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Terminal;

    const NAND2: &str = "\
* a nand2 cell
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch W=300n L=30n
MP1 Z B VDD VDD pch W=300n L=30n
MN0 Z A net0 VSS nch W=200n L=30n
MN1 net0 B VSS VSS nch W=200n L=30n
.ENDS
";

    #[test]
    fn parses_nand2() {
        let cell = parse_cell(NAND2).unwrap();
        assert_eq!(cell.name(), "NAND2");
        assert_eq!(cell.num_inputs(), 2);
        assert_eq!(cell.outputs().len(), 1);
        assert_eq!(cell.num_transistors(), 4);
        let mn1 = cell.find_transistor("MN1").unwrap();
        let t = cell.transistor(mn1);
        assert_eq!(t.kind(), MosKind::Nmos);
        assert_eq!(cell.net(t.terminal(Terminal::Source)).name(), "VSS");
        assert_eq!(t.width_nm(), 200);
    }

    #[test]
    fn continuation_lines_joined() {
        let src = "\
.SUBCKT INV A Z VDD VSS
MP0 Z A VDD VDD
+ pch W=300n L=30n
MN0 Z A VSS VSS nch
.ENDS
";
        let cell = parse_cell(src).unwrap();
        assert_eq!(cell.num_transistors(), 2);
        assert_eq!(
            cell.transistor(cell.find_transistor("MP0").unwrap()).kind(),
            MosKind::Pmos
        );
    }

    #[test]
    fn dollar_comments_stripped() {
        let src = ".SUBCKT INV A Z VDD VSS $ pins\nMP0 Z A VDD VDD pch $ pull-up\nMN0 Z A VSS VSS nch\n.ENDS";
        assert_eq!(parse_cell(src).unwrap().num_transistors(), 2);
    }

    #[test]
    fn multiple_subcircuits() {
        let two = format!(
            "{NAND2}\n.SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS\n"
        );
        let cells = parse_library(&two).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].name(), "INV");
    }

    #[test]
    fn unknown_model_rejected() {
        let src = ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD weird\n.ENDS";
        assert!(matches!(parse_cell(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn unterminated_block_rejected() {
        let src = ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch";
        assert!(matches!(parse_cell(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn dimension_units() {
        assert_eq!(parse_dimension_nm("200N", 1).unwrap(), 200);
        assert_eq!(parse_dimension_nm("0.2U", 1).unwrap(), 200);
        assert_eq!(parse_dimension_nm("2E-07", 1).unwrap(), 200);
    }

    #[test]
    fn gate_only_pin_is_input_channel_pin_is_output() {
        let cell = parse_cell(NAND2).unwrap();
        let a = cell.find_net("A").unwrap();
        let z = cell.find_net("Z").unwrap();
        assert_eq!(cell.net(a).kind(), NetKind::Input);
        assert_eq!(cell.net(z).kind(), NetKind::Output);
    }

    #[test]
    fn rail_aliases_recognized() {
        let src = ".SUBCKT INV A Z VPWR VGND\nMP0 Z A VPWR VPWR pch\nMN0 Z A VGND VGND nch\n.ENDS";
        let cell = parse_cell(src).unwrap();
        assert_eq!(cell.net(cell.power()).name(), "VPWR");
        assert_eq!(cell.net(cell.ground()).name(), "VGND");
    }

    mod fuzz {
        use ca_rng::{Rng, SplitMix64};

        /// Random printable-ASCII (plus newline) string of length `< max`.
        fn random_ascii(rng: &mut SplitMix64, max: usize) -> String {
            let len = rng.gen_index(max);
            (0..len)
                .map(|_| {
                    // 95 printables (0x20..=0x7E) plus '\n'.
                    let c = rng.gen_index(96);
                    if c == 95 {
                        '\n'
                    } else {
                        (0x20 + c as u8) as char
                    }
                })
                .collect()
        }

        /// The parser returns Ok or Err but never panics, on any
        /// printable-ASCII input (seeded, fully deterministic).
        #[test]
        fn parser_never_panics() {
            let mut rng = SplitMix64::new(0x5B1CE);
            for _ in 0..512 {
                let s = random_ascii(&mut rng, 201);
                let _ = super::super::parse_cell(&s);
            }
        }

        /// Same with a plausible .SUBCKT skeleton around fuzzed body
        /// lines.
        #[test]
        fn parser_never_panics_on_subckt_bodies() {
            let mut rng = SplitMix64::new(0x5B1CF);
            for _ in 0..512 {
                let body = random_ascii(&mut rng, 121);
                let src = format!(".SUBCKT F A Z VDD VSS\n{body}\n.ENDS");
                let _ = super::super::parse_cell(&src);
            }
        }
    }

    #[test]
    fn ignores_passive_elements() {
        let src = ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nC1 Z VSS 1f\nR1 A Z 100\n.ENDS";
        assert_eq!(parse_cell(src).unwrap().num_transistors(), 2);
    }
}
