//! Structural netlist checks ("DRC-lite").
//!
//! Characterization flows waste hours when fed malformed netlists; these
//! checks catch the common damage early: floating gates, undriven nets,
//! rail-to-rail channels, devices that can never conduct usefully, and
//! suspicious pull-network asymmetry.

use crate::model::{Cell, MosKind, NetKind};
use std::collections::BTreeSet;
use std::fmt;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The cell will simulate, but something looks off.
    Warning,
    /// The cell is structurally broken for characterization.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Short machine-readable rule name.
    pub rule: &'static str,
    /// Human-readable description referencing cell object names.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.severity, self.rule, self.message)
    }
}

/// Runs all checks on `cell`, returning findings sorted errors-first.
pub fn lint(cell: &Cell) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_has_transistors(cell, &mut findings);
    check_duplicate_device_names(cell, &mut findings);
    check_floating_gate_nets(cell, &mut findings);
    check_undriven_internal_nets(cell, &mut findings);
    check_rail_to_rail_channels(cell, &mut findings);
    check_self_shorted_devices(cell, &mut findings);
    check_gate_tied_to_rail(cell, &mut findings);
    check_output_drive(cell, &mut findings);
    check_unused_inputs(cell, &mut findings);
    check_unobservable_devices(cell, &mut findings);
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Whether the cell has no error-level findings.
pub fn is_clean(cell: &Cell) -> bool {
    lint(cell).iter().all(|f| f.severity != Severity::Error)
}

/// A cell without a single transistor cannot implement any function.
///
/// `CellBuilder::build` rejects such cells, but damaged netlists can
/// reach the flows through other routes (e.g. the fault-injection
/// harness, or future importers); characterization must see the error
/// here rather than panic downstream.
fn check_has_transistors(cell: &Cell, findings: &mut Vec<Finding>) {
    if cell.transistors().is_empty() {
        findings.push(Finding {
            severity: Severity::Error,
            rule: "no-transistors",
            message: format!("cell `{}` contains no transistors", cell.name()),
        });
    }
}

/// A gate net that nothing drives (not a pin, not a channel terminal).
fn check_floating_gate_nets(cell: &Cell, findings: &mut Vec<Finding>) {
    let mut driven: BTreeSet<usize> = BTreeSet::new();
    for t in cell.transistors() {
        driven.insert(t.drain().index());
        driven.insert(t.source().index());
    }
    for (i, net) in cell.nets().iter().enumerate() {
        let is_pin = !matches!(net.kind(), NetKind::Internal);
        let gates_something = cell.transistors().iter().any(|t| t.gate().index() == i);
        if gates_something && !is_pin && !driven.contains(&i) {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "floating-gate-net",
                message: format!("net `{}` gates devices but is never driven", net.name()),
            });
        }
    }
}

/// Internal nets with exactly one channel connection (dead ends).
fn check_undriven_internal_nets(cell: &Cell, findings: &mut Vec<Finding>) {
    for (i, net) in cell.nets().iter().enumerate() {
        if net.kind() != NetKind::Internal {
            continue;
        }
        let connections = cell
            .transistors()
            .iter()
            .filter(|t| t.drain().index() == i || t.source().index() == i)
            .count();
        if connections == 1 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "dead-end-net",
                message: format!(
                    "internal net `{}` has a single channel connection",
                    net.name()
                ),
            });
        }
    }
}

/// A single device whose channel directly bridges VDD and VSS.
fn check_rail_to_rail_channels(cell: &Cell, findings: &mut Vec<Finding>) {
    let (vdd, gnd) = (cell.power(), cell.ground());
    for t in cell.transistors() {
        let ends = [t.drain(), t.source()];
        if ends.contains(&vdd) && ends.contains(&gnd) {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "rail-to-rail-channel",
                message: format!("device `{}` shorts the rails when conducting", t.name()),
            });
        }
    }
}

/// Devices permanently off (gate tied to the rail of their own polarity's
/// passive level) — dead logic.
fn check_gate_tied_to_rail(cell: &Cell, findings: &mut Vec<Finding>) {
    for t in cell.transistors() {
        let stuck_off = match t.kind() {
            MosKind::Nmos => t.gate() == cell.ground(),
            MosKind::Pmos => t.gate() == cell.power(),
        };
        if stuck_off {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "gate-tied-off",
                message: format!("device `{}` can never conduct", t.name()),
            });
        }
    }
}

/// Every output should see at least one NMOS and one PMOS pull network.
fn check_output_drive(cell: &Cell, findings: &mut Vec<Finding>) {
    for &out in cell.outputs() {
        let mut kinds = BTreeSet::new();
        for t in cell.transistors() {
            if t.drain() == out || t.source() == out {
                kinds.insert(t.kind());
            }
        }
        if kinds.is_empty() {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "undriven-output",
                message: format!(
                    "output `{}` has no channel connection",
                    cell.net(out).name()
                ),
            });
        } else if kinds.len() == 1 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "single-polarity-output",
                message: format!(
                    "output `{}` is driven by only one device polarity",
                    cell.net(out).name()
                ),
            });
        }
    }
}

/// Two devices with the same instance name.
///
/// Names are the identity that diagnosis reports, quarantine entries
/// and `.cam` defect labels hang off; a duplicate makes every
/// downstream artifact ambiguous, so it is an error even though the
/// simulator itself would run.
fn check_duplicate_device_names(cell: &Cell, findings: &mut Vec<Finding>) {
    let mut seen = BTreeSet::new();
    for t in cell.transistors() {
        if !seen.insert(t.name()) {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "duplicate-device-name",
                message: format!("device name `{}` is used more than once", t.name()),
            });
        }
    }
}

/// Devices whose drain and source land on the same net.
///
/// Such a channel connects a net to itself: the device can never move
/// charge, and every defect on it — including the drain-source short,
/// which is already "wired in" — is structurally undetectable. Flagging
/// it here saves the whole per-defect simulation budget downstream.
fn check_self_shorted_devices(cell: &Cell, findings: &mut Vec<Finding>) {
    for t in cell.transistors() {
        if t.drain() == t.source() {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "self-shorted-device",
                message: format!(
                    "device `{}` has drain and source on the same net `{}`",
                    t.name(),
                    cell.net(t.drain()).name()
                ),
            });
        }
    }
}

/// Static defect-reachability: devices whose channel cannot influence
/// any output.
///
/// A defect is observable only if the defective device sits on some
/// channel path that an output can see. This walks the channel graph
/// from the output nets — *not* expanding through the rails, which
/// connect everything — and flags devices with no channel terminal in
/// the reachable component. Every defect on such a device would
/// simulate to "undetectable"; the flag reports that verdict for free,
/// before any simulation budget is spent.
fn check_unobservable_devices(cell: &Cell, findings: &mut Vec<Finding>) {
    let (vdd, gnd) = (cell.power(), cell.ground());
    let is_rail = |i: usize| vdd.index() == i || gnd.index() == i;
    // Channel adjacency: net -> nets bridged by one device channel.
    let mut adjacent: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cell.nets().len()];
    for t in cell.transistors() {
        let (d, s) = (t.drain().index(), t.source().index());
        adjacent[d].insert(s);
        adjacent[s].insert(d);
    }
    let mut component: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = cell.outputs().iter().map(|o| o.index()).collect();
    while let Some(net) = frontier.pop() {
        if is_rail(net) || !component.insert(net) {
            continue;
        }
        frontier.extend(adjacent[net].iter().copied());
    }
    for t in cell.transistors() {
        let observable =
            component.contains(&t.drain().index()) || component.contains(&t.source().index());
        if !observable {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "unobservable-device",
                message: format!("defects on device `{}` cannot reach any output", t.name()),
            });
        }
    }
}

/// Input pins that gate nothing.
fn check_unused_inputs(cell: &Cell, findings: &mut Vec<Finding>) {
    for &pin in cell.inputs() {
        let used = cell.transistors().iter().any(|t| t.gate() == pin);
        if !used {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "unused-input",
                message: format!("input `{}` gates no device", cell.net(pin).name()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn clean_cell_has_no_findings() {
        let cell = spice::parse_cell(NAND2).unwrap();
        assert!(lint(&cell).is_empty(), "{:?}", lint(&cell));
        assert!(is_clean(&cell));
    }

    #[test]
    fn detects_floating_gate_net() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z fl VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "floating-gate-net"));
        assert!(!is_clean(&cell));
    }

    #[test]
    fn detects_rail_to_rail_channel() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 VDD A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        assert!(lint(&cell).iter().any(|f| f.rule == "rail-to-rail-channel"));
    }

    #[test]
    fn detects_single_polarity_output() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMN0 Z A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "single-polarity-output"));
    }

    #[test]
    fn detects_unused_input_and_dead_end() {
        let src = ".SUBCKT BAD A B Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 dead A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(
            findings.iter().any(|f| f.rule == "unused-input"),
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.rule == "dead-end-net"));
    }

    #[test]
    fn detects_gate_tied_off() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 Z VSS VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        assert!(lint(&cell).iter().any(|f| f.rule == "gate-tied-off"));
    }

    #[test]
    fn detects_zero_transistor_cell() {
        use crate::model::{CellBuilder, NetKind};
        let mut b = CellBuilder::new("EMPTY");
        b.add_net("A", NetKind::Input);
        b.add_net("Z", NetKind::Output);
        b.add_net("VDD", NetKind::Power);
        b.add_net("VSS", NetKind::Ground);
        let cell = b.build_raw().unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "no-transistors"));
        assert!(!is_clean(&cell));
    }

    #[test]
    fn detects_duplicate_device_names() {
        use crate::model::{CellBuilder, MosKind, NetKind};
        // Every real construction route rejects duplicate names at
        // insert time, so the fixture uses the test-only unchecked push.
        let mut b = CellBuilder::new("DUP");
        let a = b.add_net("A", NetKind::Input);
        let z = b.add_net("Z", NetKind::Output);
        let vdd = b.add_net("VDD", NetKind::Power);
        let vss = b.add_net("VSS", NetKind::Ground);
        b.add_transistor("MP0", MosKind::Pmos, z, a, vdd, vdd, 1, 1)
            .unwrap();
        b.add_transistor("MN0", MosKind::Nmos, z, a, vss, vss, 1, 1)
            .unwrap();
        b.push_transistor_unchecked("MN0", MosKind::Nmos, z, a, vss, vss, 1, 1);
        let cell = b.build().unwrap();
        let findings = lint(&cell);
        let dup: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "duplicate-device-name")
            .collect();
        assert_eq!(dup.len(), 1, "{findings:?}");
        assert_eq!(dup[0].severity, Severity::Error);
        assert!(dup[0].message.contains("MN0"));
        assert!(!is_clean(&cell));
    }

    #[test]
    fn detects_self_shorted_device() {
        // MN1's drain and source both land on net0: a channel from a
        // net to itself.
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A net0 VSS nch\nMN1 net0 A net0 VSS nch\nMN2 net0 A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "self-shorted-device")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("MN1"));
        assert!(hits[0].message.contains("net0"));
    }

    #[test]
    fn detects_unobservable_device() {
        // MN1/MN2 form a channel island between isl and VSS that no
        // output can reach: isl only connects onward through the rail,
        // and the reachability walk never expands through rails.
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 isl A VSS VSS nch\nMN2 isl A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unobservable-device")
            .collect();
        assert_eq!(hits.len(), 2, "{findings:?}");
        assert!(hits.iter().all(|f| f.severity == Severity::Warning));
        assert!(hits.iter().any(|f| f.message.contains("MN1")));
        assert!(hits.iter().any(|f| f.message.contains("MN2")));
        // The devices on the output path are not flagged.
        assert!(!hits.iter().any(|f| f.message.contains("MN0")));
    }

    #[test]
    fn series_stack_is_fully_observable() {
        // Both NAND2 pull-down devices sit on the Z--net0--VSS path;
        // the walk must reach net0 through MN0's channel.
        let cell = spice::parse_cell(NAND2).unwrap();
        assert!(
            !lint(&cell).iter().any(|f| f.rule == "unobservable-device"),
            "{:?}",
            lint(&cell)
        );
    }

    #[test]
    fn findings_sort_errors_first() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z fl VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 dead A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.len() >= 2);
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn whole_generated_library_is_clean() {
        let lib = crate::library::generate_library(&crate::library::LibraryConfig::quick(
            crate::Technology::C28,
        ));
        for lc in &lib.cells {
            assert!(is_clean(&lc.cell), "{}", lc.cell.name());
        }
    }

    #[test]
    fn display_formats() {
        let f = Finding {
            severity: Severity::Warning,
            rule: "demo",
            message: "something".into(),
        };
        assert_eq!(f.to_string(), "warning: demo: something");
    }
}
