//! Structural netlist checks ("DRC-lite").
//!
//! Characterization flows waste hours when fed malformed netlists; these
//! checks catch the common damage early: floating gates, undriven nets,
//! rail-to-rail channels, devices that can never conduct usefully, and
//! suspicious pull-network asymmetry.

use crate::model::{Cell, MosKind, NetKind};
use std::collections::HashSet;
use std::fmt;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The cell will simulate, but something looks off.
    Warning,
    /// The cell is structurally broken for characterization.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Short machine-readable rule name.
    pub rule: &'static str,
    /// Human-readable description referencing cell object names.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.severity, self.rule, self.message)
    }
}

/// Runs all checks on `cell`, returning findings sorted errors-first.
pub fn lint(cell: &Cell) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_has_transistors(cell, &mut findings);
    check_floating_gate_nets(cell, &mut findings);
    check_undriven_internal_nets(cell, &mut findings);
    check_rail_to_rail_channels(cell, &mut findings);
    check_gate_tied_to_rail(cell, &mut findings);
    check_output_drive(cell, &mut findings);
    check_unused_inputs(cell, &mut findings);
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Whether the cell has no error-level findings.
pub fn is_clean(cell: &Cell) -> bool {
    lint(cell).iter().all(|f| f.severity != Severity::Error)
}

/// A cell without a single transistor cannot implement any function.
///
/// `CellBuilder::build` rejects such cells, but damaged netlists can
/// reach the flows through other routes (e.g. the fault-injection
/// harness, or future importers); characterization must see the error
/// here rather than panic downstream.
fn check_has_transistors(cell: &Cell, findings: &mut Vec<Finding>) {
    if cell.transistors().is_empty() {
        findings.push(Finding {
            severity: Severity::Error,
            rule: "no-transistors",
            message: format!("cell `{}` contains no transistors", cell.name()),
        });
    }
}

/// A gate net that nothing drives (not a pin, not a channel terminal).
fn check_floating_gate_nets(cell: &Cell, findings: &mut Vec<Finding>) {
    let mut driven: HashSet<usize> = HashSet::new();
    for t in cell.transistors() {
        driven.insert(t.drain().index());
        driven.insert(t.source().index());
    }
    for (i, net) in cell.nets().iter().enumerate() {
        let is_pin = !matches!(net.kind(), NetKind::Internal);
        let gates_something = cell.transistors().iter().any(|t| t.gate().index() == i);
        if gates_something && !is_pin && !driven.contains(&i) {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "floating-gate-net",
                message: format!("net `{}` gates devices but is never driven", net.name()),
            });
        }
    }
}

/// Internal nets with exactly one channel connection (dead ends).
fn check_undriven_internal_nets(cell: &Cell, findings: &mut Vec<Finding>) {
    for (i, net) in cell.nets().iter().enumerate() {
        if net.kind() != NetKind::Internal {
            continue;
        }
        let connections = cell
            .transistors()
            .iter()
            .filter(|t| t.drain().index() == i || t.source().index() == i)
            .count();
        if connections == 1 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "dead-end-net",
                message: format!(
                    "internal net `{}` has a single channel connection",
                    net.name()
                ),
            });
        }
    }
}

/// A single device whose channel directly bridges VDD and VSS.
fn check_rail_to_rail_channels(cell: &Cell, findings: &mut Vec<Finding>) {
    let (vdd, gnd) = (cell.power(), cell.ground());
    for t in cell.transistors() {
        let ends = [t.drain(), t.source()];
        if ends.contains(&vdd) && ends.contains(&gnd) {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "rail-to-rail-channel",
                message: format!("device `{}` shorts the rails when conducting", t.name()),
            });
        }
    }
}

/// Devices permanently off (gate tied to the rail of their own polarity's
/// passive level) — dead logic.
fn check_gate_tied_to_rail(cell: &Cell, findings: &mut Vec<Finding>) {
    for t in cell.transistors() {
        let stuck_off = match t.kind() {
            MosKind::Nmos => t.gate() == cell.ground(),
            MosKind::Pmos => t.gate() == cell.power(),
        };
        if stuck_off {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "gate-tied-off",
                message: format!("device `{}` can never conduct", t.name()),
            });
        }
    }
}

/// Every output should see at least one NMOS and one PMOS pull network.
fn check_output_drive(cell: &Cell, findings: &mut Vec<Finding>) {
    for &out in cell.outputs() {
        let mut kinds = HashSet::new();
        for t in cell.transistors() {
            if t.drain() == out || t.source() == out {
                kinds.insert(t.kind());
            }
        }
        if kinds.is_empty() {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "undriven-output",
                message: format!(
                    "output `{}` has no channel connection",
                    cell.net(out).name()
                ),
            });
        } else if kinds.len() == 1 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "single-polarity-output",
                message: format!(
                    "output `{}` is driven by only one device polarity",
                    cell.net(out).name()
                ),
            });
        }
    }
}

/// Input pins that gate nothing.
fn check_unused_inputs(cell: &Cell, findings: &mut Vec<Finding>) {
    for &pin in cell.inputs() {
        let used = cell.transistors().iter().any(|t| t.gate() == pin);
        if !used {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "unused-input",
                message: format!("input `{}` gates no device", cell.net(pin).name()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn clean_cell_has_no_findings() {
        let cell = spice::parse_cell(NAND2).unwrap();
        assert!(lint(&cell).is_empty(), "{:?}", lint(&cell));
        assert!(is_clean(&cell));
    }

    #[test]
    fn detects_floating_gate_net() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z fl VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "floating-gate-net"));
        assert!(!is_clean(&cell));
    }

    #[test]
    fn detects_rail_to_rail_channel() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 VDD A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        assert!(lint(&cell).iter().any(|f| f.rule == "rail-to-rail-channel"));
    }

    #[test]
    fn detects_single_polarity_output() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMN0 Z A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "single-polarity-output"));
    }

    #[test]
    fn detects_unused_input_and_dead_end() {
        let src = ".SUBCKT BAD A B Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 dead A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(
            findings.iter().any(|f| f.rule == "unused-input"),
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.rule == "dead-end-net"));
    }

    #[test]
    fn detects_gate_tied_off() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 Z VSS VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        assert!(lint(&cell).iter().any(|f| f.rule == "gate-tied-off"));
    }

    #[test]
    fn detects_zero_transistor_cell() {
        use crate::model::{CellBuilder, NetKind};
        let mut b = CellBuilder::new("EMPTY");
        b.add_net("A", NetKind::Input);
        b.add_net("Z", NetKind::Output);
        b.add_net("VDD", NetKind::Power);
        b.add_net("VSS", NetKind::Ground);
        let cell = b.build_raw().unwrap();
        let findings = lint(&cell);
        assert!(findings.iter().any(|f| f.rule == "no-transistors"));
        assert!(!is_clean(&cell));
    }

    #[test]
    fn findings_sort_errors_first() {
        let src = ".SUBCKT BAD A Z VDD VSS\nMP0 Z fl VDD VDD pch\nMN0 Z A VSS VSS nch\nMN1 dead A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let findings = lint(&cell);
        assert!(findings.len() >= 2);
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn whole_generated_library_is_clean() {
        let lib = crate::library::generate_library(&crate::library::LibraryConfig::quick(
            crate::Technology::C28,
        ));
        for lc in &lib.cells {
            assert!(is_clean(&lc.cell), "{}", lc.cell.name());
        }
    }

    #[test]
    fn display_formats() {
        let f = Finding {
            severity: Severity::Warning,
            rule: "demo",
            message: "something".into(),
        };
        assert_eq!(f.to_string(), "warning: demo: something");
    }
}
