//! Transistor-level netlist substrate for cell-aware model generation.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about standard cells at the transistor level:
//!
//! - a compact, validated [`Cell`]/[`Net`]/[`Transistor`] data model
//!   ([`model`]),
//! - a SPICE/CDL subcircuit parser ([`spice`]) and writer ([`writer`]),
//! - a Boolean expression type used both as the functional reference of a
//!   cell and as the input of the synthesizer ([`expr`]),
//! - a standard-cell synthesizer that builds static CMOS transistor
//!   netlists from multi-stage gate plans ([`synth`]),
//! - a synthetic standard-cell *library* generator with per-technology
//!   netlist styles ([`library`]), standing in for the proprietary C40 /
//!   28SOI / C28 libraries of the paper.
//!
//! # Example
//!
//! ```
//! use ca_netlist::spice;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "\
//! .SUBCKT NAND2 A B Z VDD VSS
//! MP0 Z A VDD VDD pch W=300n L=30n
//! MP1 Z B VDD VDD pch W=300n L=30n
//! MN0 Z A net0 VSS nch W=200n L=30n
//! MN1 net0 B VSS VSS nch W=200n L=30n
//! .ENDS
//! ";
//! let cell = spice::parse_cell(src)?;
//! assert_eq!(cell.name(), "NAND2");
//! assert_eq!(cell.num_inputs(), 2);
//! assert_eq!(cell.transistors().len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod corrupt;
pub mod error;
pub mod expr;
pub mod library;
pub mod lint;
pub mod model;
pub mod spice;
pub mod synth;
pub mod writer;

pub use corrupt::{corrupt_cell, salt_library, Corruption, SaltedCell};
pub use error::NetlistError;
pub use expr::Expr;
pub use library::{generate_library, Library, LibraryCell, LibraryConfig, TechStyle, Technology};
pub use lint::{is_clean, lint, Finding, Severity};
pub use model::{
    Cell, CellBuilder, MosKind, Net, NetId, NetKind, Terminal, Transistor, TransistorId,
};
pub use synth::{DriveStyle, NetlistStyle, Sig, Stage, StageExpr, StagePlan, SynthesizedCell};
