//! Deterministic netlist fault injection ("salting") for robustness
//! testing.
//!
//! Characterization flows must survive broken libraries: a single
//! malformed cell must land in a quarantine report instead of aborting
//! the batch. This module manufactures the damage on purpose, so the
//! robustness tests can prove every failure mode is caught with the
//! right diagnosis:
//!
//! | corruption | detected by |
//! |---|---|
//! | [`Corruption::FloatingOutput`] | lint `undriven-output` |
//! | [`Corruption::DanglingGate`] | lint `floating-gate-net` |
//! | [`Corruption::ZeroTransistor`] | lint `no-transistors` |
//! | [`Corruption::MultiOutput`] | CA-matrix single-output check |
//! | [`Corruption::OscillatorLoop`] | solver oscillation (lint-clean!) |
//!
//! All mutations are deterministic in `(cell, corruption, seed)`.

use crate::error::NetlistError;
use crate::library::Library;
use crate::model::{Cell, CellBuilder, MosKind, NetKind};
use ca_rng::SplitMix64;
use std::fmt;

/// One way of mutilating a structurally valid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Strands the output: every channel terminal on the output net is
    /// rewired to a fresh internal net, leaving the output undriven.
    FloatingOutput,
    /// Re-gates one transistor onto a fresh internal net that nothing
    /// drives.
    DanglingGate,
    /// Removes every transistor from the cell.
    ZeroTransistor,
    /// Promotes a channel-connected internal net to a second output pin.
    MultiOutput,
    /// Adds a self-gated feedback loop that makes the defect-free cell
    /// oscillate under a rising input — structurally lint-clean, only
    /// the solver can catch it.
    OscillatorLoop,
}

impl Corruption {
    /// Every corruption, in a fixed order.
    pub const ALL: [Corruption; 5] = [
        Corruption::FloatingOutput,
        Corruption::DanglingGate,
        Corruption::ZeroTransistor,
        Corruption::MultiOutput,
        Corruption::OscillatorLoop,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Corruption::FloatingOutput => "floating-output",
            Corruption::DanglingGate => "dangling-gate",
            Corruption::ZeroTransistor => "zero-transistor",
            Corruption::MultiOutput => "multi-output",
            Corruption::OscillatorLoop => "oscillator-loop",
        }
    }
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies `corruption` to a copy of `cell`. The `seed` picks the victim
/// transistor/net where a choice exists; the same inputs always yield
/// the same corrupted cell.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] when the cell cannot host the
/// corruption (e.g. [`Corruption::MultiOutput`] on a cell without a
/// channel-connected internal net).
pub fn corrupt_cell(cell: &Cell, corruption: Corruption, seed: u64) -> Result<Cell, NetlistError> {
    let mut rng = SplitMix64::new(seed ^ 0xC0_44_17);
    match corruption {
        Corruption::FloatingOutput => strand_output(cell),
        Corruption::DanglingGate => dangle_gate(cell, &mut rng),
        Corruption::ZeroTransistor => strip_transistors(cell),
        Corruption::MultiOutput => promote_internal_net(cell, &mut rng),
        Corruption::OscillatorLoop => add_oscillator(cell, &mut rng),
    }
}

/// Copies every net of `cell` into `builder`, preserving ids. An
/// optional override changes the kind of one net.
fn copy_nets(cell: &Cell, builder: &mut CellBuilder, kind_override: Option<(usize, NetKind)>) {
    for (i, net) in cell.nets().iter().enumerate() {
        let kind = match kind_override {
            Some((idx, kind)) if idx == i => kind,
            _ => net.kind(),
        };
        builder.add_net(net.name(), kind);
    }
}

/// A fresh net name not present in `cell` (numeric suffix on collision).
fn fresh_net_name(cell: &Cell, base: &str) -> String {
    if cell.find_net(base).is_none() {
        return base.to_string();
    }
    (0..)
        .map(|i| format!("{base}{i}"))
        .find(|n| cell.find_net(n).is_none())
        .expect("unbounded name space")
}

/// A fresh transistor name not present in `cell`.
fn fresh_transistor_name(cell: &Cell, base: &str) -> String {
    if cell.find_transistor(base).is_none() {
        return base.to_string();
    }
    (0..)
        .map(|i| format!("{base}{i}"))
        .find(|n| cell.find_transistor(n).is_none())
        .expect("unbounded name space")
}

fn strand_output(cell: &Cell) -> Result<Cell, NetlistError> {
    let out = cell.output();
    let mut b = CellBuilder::new(cell.name());
    copy_nets(cell, &mut b, None);
    let stranded = b.add_net(fresh_net_name(cell, "stranded"), NetKind::Internal);
    for t in cell.transistors() {
        let remap = |n| if n == out { stranded } else { n };
        b.add_transistor(
            t.name(),
            t.kind(),
            remap(t.drain()),
            t.gate(),
            remap(t.source()),
            t.bulk(),
            t.width_nm(),
            t.length_nm(),
        )?;
    }
    b.build()
}

fn dangle_gate(cell: &Cell, rng: &mut SplitMix64) -> Result<Cell, NetlistError> {
    if cell.num_transistors() == 0 {
        return Err(NetlistError::Invalid(format!(
            "cell `{}` has no transistor to re-gate",
            cell.name()
        )));
    }
    let victim = (rng.next_u64() as usize) % cell.num_transistors();
    let mut b = CellBuilder::new(cell.name());
    copy_nets(cell, &mut b, None);
    let dangle = b.add_net(fresh_net_name(cell, "dangle"), NetKind::Internal);
    for (i, t) in cell.transistors().iter().enumerate() {
        let gate = if i == victim { dangle } else { t.gate() };
        b.add_transistor(
            t.name(),
            t.kind(),
            t.drain(),
            gate,
            t.source(),
            t.bulk(),
            t.width_nm(),
            t.length_nm(),
        )?;
    }
    b.build()
}

fn strip_transistors(cell: &Cell) -> Result<Cell, NetlistError> {
    let mut b = CellBuilder::new(cell.name());
    copy_nets(cell, &mut b, None);
    b.build_raw()
}

fn promote_internal_net(cell: &Cell, rng: &mut SplitMix64) -> Result<Cell, NetlistError> {
    let candidates: Vec<usize> = cell
        .nets()
        .iter()
        .enumerate()
        .filter(|(i, n)| {
            n.kind() == NetKind::Internal
                && cell
                    .transistors()
                    .iter()
                    .any(|t| t.drain().index() == *i || t.source().index() == *i)
        })
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return Err(NetlistError::Invalid(format!(
            "cell `{}` has no channel-connected internal net to promote",
            cell.name()
        )));
    }
    let promoted = candidates[(rng.next_u64() as usize) % candidates.len()];
    let mut b = CellBuilder::new(cell.name());
    copy_nets(cell, &mut b, Some((promoted, NetKind::Output)));
    for t in cell.transistors() {
        b.add_transistor(
            t.name(),
            t.kind(),
            t.drain(),
            t.gate(),
            t.source(),
            t.bulk(),
            t.width_nm(),
            t.length_nm(),
        )?;
    }
    b.build()
}

/// Attaches the three-device ring below to an input pin `g`:
///
/// ```text
///   VDD --[P, gate=g]-- osc --[N, gate=osc]-- foot --[N, gate=g]-- VSS
/// ```
///
/// Under static inputs the loop settles (possibly at X), but when `g`
/// rises after `osc` was charged to 1, `osc` toggles forever: the
/// self-gated pull-down discharges it, the floating net then reverts to
/// its stored charge, and the cycle repeats. Every structural lint rule
/// passes — only a solver with oscillation detection reports it.
fn add_oscillator(cell: &Cell, rng: &mut SplitMix64) -> Result<Cell, NetlistError> {
    if cell.inputs().is_empty() {
        return Err(NetlistError::Invalid(format!(
            "cell `{}` has no input to gate the loop",
            cell.name()
        )));
    }
    let g = cell.inputs()[(rng.next_u64() as usize) % cell.inputs().len()];
    let mut b = CellBuilder::new(cell.name());
    copy_nets(cell, &mut b, None);
    let osc = b.add_net(fresh_net_name(cell, "osc"), NetKind::Internal);
    let foot = b.add_net(fresh_net_name(cell, "oscfoot"), NetKind::Internal);
    for t in cell.transistors() {
        b.add_transistor(
            t.name(),
            t.kind(),
            t.drain(),
            t.gate(),
            t.source(),
            t.bulk(),
            t.width_nm(),
            t.length_nm(),
        )?;
    }
    let vdd = cell.power();
    let vss = cell.ground();
    b.add_transistor(
        fresh_transistor_name(cell, "MOSCP"),
        MosKind::Pmos,
        osc,
        g,
        vdd,
        vdd,
        100,
        30,
    )?;
    b.add_transistor(
        fresh_transistor_name(cell, "MOSCN"),
        MosKind::Nmos,
        osc,
        osc,
        foot,
        vss,
        100,
        30,
    )?;
    b.add_transistor(
        fresh_transistor_name(cell, "MOSCF"),
        MosKind::Nmos,
        foot,
        g,
        vss,
        vss,
        100,
        30,
    )?;
    b.build()
}

/// Record of one corrupted library cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaltedCell {
    /// Name of the (still in-library) corrupted cell.
    pub cell: String,
    /// The corruption applied.
    pub corruption: Corruption,
}

/// Corrupts `count` cells of `library` in place, cycling through
/// [`Corruption::ALL`], and returns what was done to whom.
///
/// Victims are chosen deterministically from `seed`, skipping cells
/// that cannot host the requested corruption; at most one corruption is
/// applied per cell. Returns fewer than `count` entries only when the
/// library runs out of compatible cells.
pub fn salt_library(library: &mut Library, count: usize, seed: u64) -> Vec<SaltedCell> {
    let mut rng = SplitMix64::new(seed);
    let mut salted: Vec<SaltedCell> = Vec::with_capacity(count);
    let mut taken = vec![false; library.cells.len()];
    for k in 0..count {
        let corruption = Corruption::ALL[k % Corruption::ALL.len()];
        let start = (rng.next_u64() as usize) % library.cells.len().max(1);
        let victim = (0..library.cells.len())
            .map(|off| (start + off) % library.cells.len())
            .find(|&i| !taken[i] && corrupt_cell(&library.cells[i].cell, corruption, seed).is_ok());
        let Some(i) = victim else { break };
        taken[i] = true;
        let corrupted = corrupt_cell(&library.cells[i].cell, corruption, seed)
            .expect("compatibility just checked");
        library.cells[i].cell = corrupted;
        salted.push(SaltedCell {
            cell: library.cells[i].cell.name().to_string(),
            corruption,
        });
    }
    salted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{generate_library, LibraryConfig, Technology};
    use crate::lint::{is_clean, lint, Severity};
    use crate::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn nand2() -> Cell {
        spice::parse_cell(NAND2).unwrap()
    }

    fn first_error_rule(cell: &Cell) -> Option<&'static str> {
        lint(cell)
            .into_iter()
            .find(|f| f.severity == Severity::Error)
            .map(|f| f.rule)
    }

    #[test]
    fn floating_output_fails_undriven_output_lint() {
        let bad = corrupt_cell(&nand2(), Corruption::FloatingOutput, 1).unwrap();
        assert_eq!(first_error_rule(&bad), Some("undriven-output"));
        assert_eq!(bad.num_transistors(), 4);
    }

    #[test]
    fn dangling_gate_fails_floating_gate_lint() {
        let bad = corrupt_cell(&nand2(), Corruption::DanglingGate, 1).unwrap();
        assert_eq!(first_error_rule(&bad), Some("floating-gate-net"));
    }

    #[test]
    fn zero_transistor_fails_no_transistors_lint() {
        let bad = corrupt_cell(&nand2(), Corruption::ZeroTransistor, 1).unwrap();
        assert_eq!(bad.num_transistors(), 0);
        assert_eq!(first_error_rule(&bad), Some("no-transistors"));
    }

    #[test]
    fn multi_output_is_lint_clean_but_has_two_outputs() {
        let bad = corrupt_cell(&nand2(), Corruption::MultiOutput, 1).unwrap();
        assert_eq!(bad.outputs().len(), 2);
        assert!(
            lint(&bad).iter().all(|f| f.severity != Severity::Error),
            "{:?}",
            lint(&bad)
        );
    }

    #[test]
    fn oscillator_loop_is_lint_clean() {
        let bad = corrupt_cell(&nand2(), Corruption::OscillatorLoop, 1).unwrap();
        assert!(is_clean(&bad), "{:?}", lint(&bad));
        assert_eq!(bad.num_transistors(), 4 + 3);
        assert!(bad.find_net("osc").is_some());
    }

    #[test]
    fn corruption_is_deterministic() {
        for c in Corruption::ALL {
            let a = corrupt_cell(&nand2(), c, 42).unwrap();
            let b = corrupt_cell(&nand2(), c, 42).unwrap();
            assert_eq!(a, b, "{c}");
        }
    }

    #[test]
    fn salting_covers_all_corruptions_once() {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
        lib.cells.truncate(20);
        let salted = salt_library(&mut lib, 5, 7);
        assert_eq!(salted.len(), 5);
        let kinds: std::collections::HashSet<_> = salted.iter().map(|s| s.corruption).collect();
        assert_eq!(kinds.len(), 5, "{salted:?}");
        // Victim names are distinct and still present in the library.
        let names: std::collections::HashSet<_> = salted.iter().map(|s| &s.cell).collect();
        assert_eq!(names.len(), 5);
        for s in &salted {
            assert!(lib.cells.iter().any(|lc| lc.cell.name() == s.cell));
        }
    }
}
