//! Core data model: nets, transistors and cells.
//!
//! A [`Cell`] is an immutable, validated transistor-level view of a standard
//! cell: a set of [`Net`]s (inputs, outputs, power, ground, internal nodes)
//! and a set of MOS [`Transistor`]s connecting them. Construction goes
//! through [`CellBuilder`], which checks structural invariants once so the
//! rest of the workspace can index freely.

use crate::error::NetlistError;
use std::fmt;

/// Index of a net within its owning [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

/// Index of a transistor within its owning [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransistorId(pub u32);

impl TransistorId {
    /// Returns the id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransistorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mos#{}", self.0)
    }
}

/// Channel polarity of a MOS transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MosKind {
    /// N-channel device: conducts when its gate is at logic 1.
    Nmos,
    /// P-channel device: conducts when its gate is at logic 0.
    Pmos,
}

impl MosKind {
    /// The complementary polarity (`Nmos` ↔ `Pmos`).
    pub fn dual(self) -> MosKind {
        match self {
            MosKind::Nmos => MosKind::Pmos,
            MosKind::Pmos => MosKind::Nmos,
        }
    }

    /// Single-letter tag used in canonical names (`n` / `p`).
    pub fn letter(self) -> char {
        match self {
            MosKind::Nmos => 'n',
            MosKind::Pmos => 'p',
        }
    }
}

impl fmt::Display for MosKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosKind::Nmos => write!(f, "NMOS"),
            MosKind::Pmos => write!(f, "PMOS"),
        }
    }
}

/// One of the four terminals of a MOS transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Terminal {
    /// Drain terminal.
    Drain,
    /// Gate terminal.
    Gate,
    /// Source terminal.
    Source,
    /// Bulk/body terminal.
    Bulk,
}

impl Terminal {
    /// The three terminals used by the defect universe by default.
    pub const CHANNEL_AND_GATE: [Terminal; 3] = [Terminal::Drain, Terminal::Gate, Terminal::Source];

    /// Single-letter tag used in column names (`D`, `G`, `S`, `B`).
    pub fn letter(self) -> char {
        match self {
            Terminal::Drain => 'D',
            Terminal::Gate => 'G',
            Terminal::Source => 'S',
            Terminal::Bulk => 'B',
        }
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Role of a net inside a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NetKind {
    /// Primary input pin.
    Input,
    /// Primary output pin.
    Output,
    /// Internal node.
    Internal,
    /// Power rail (logic 1).
    Power,
    /// Ground rail (logic 0).
    Ground,
}

impl NetKind {
    /// Whether the net is one of the two supply rails.
    pub fn is_rail(self) -> bool {
        matches!(self, NetKind::Power | NetKind::Ground)
    }
}

/// A named electrical node of a cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Net {
    name: String,
    kind: NetKind,
}

impl Net {
    /// Creates a net with the given name and role.
    pub fn new(name: impl Into<String>, kind: NetKind) -> Net {
        Net {
            name: name.into(),
            kind,
        }
    }

    /// The net's name as written in the netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net's role.
    pub fn kind(&self) -> NetKind {
        self.kind
    }
}

/// A MOS transistor instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transistor {
    name: String,
    kind: MosKind,
    drain: NetId,
    gate: NetId,
    source: NetId,
    bulk: NetId,
    /// Drawn channel width in nanometres.
    width_nm: u32,
    /// Drawn channel length in nanometres.
    length_nm: u32,
}

impl Transistor {
    /// Creates a transistor connecting the given nets.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: MosKind,
        drain: NetId,
        gate: NetId,
        source: NetId,
        bulk: NetId,
        width_nm: u32,
        length_nm: u32,
    ) -> Transistor {
        Transistor {
            name: name.into(),
            kind,
            drain,
            gate,
            source,
            bulk,
            width_nm,
            length_nm,
        }
    }

    /// Instance name as written in the netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Channel polarity.
    pub fn kind(&self) -> MosKind {
        self.kind
    }

    /// Drain net.
    pub fn drain(&self) -> NetId {
        self.drain
    }

    /// Gate net.
    pub fn gate(&self) -> NetId {
        self.gate
    }

    /// Source net.
    pub fn source(&self) -> NetId {
        self.source
    }

    /// Bulk net.
    pub fn bulk(&self) -> NetId {
        self.bulk
    }

    /// Drawn channel width in nanometres.
    pub fn width_nm(&self) -> u32 {
        self.width_nm
    }

    /// Drawn channel length in nanometres.
    pub fn length_nm(&self) -> u32 {
        self.length_nm
    }

    /// Net connected to `terminal`.
    pub fn terminal(&self, terminal: Terminal) -> NetId {
        match terminal {
            Terminal::Drain => self.drain,
            Terminal::Gate => self.gate,
            Terminal::Source => self.source,
            Terminal::Bulk => self.bulk,
        }
    }

    /// The channel terminal opposite to `terminal`.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is not [`Terminal::Drain`] or [`Terminal::Source`].
    pub fn other_channel_end(&self, terminal: Terminal) -> NetId {
        match terminal {
            Terminal::Drain => self.source,
            Terminal::Source => self.drain,
            _ => panic!("other_channel_end called with non-channel terminal {terminal}"),
        }
    }
}

/// A validated transistor-level standard cell.
///
/// Construct with [`CellBuilder`] or parse one with
/// [`spice::parse_cell`](crate::spice::parse_cell).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cell {
    name: String,
    nets: Vec<Net>,
    transistors: Vec<Transistor>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    power: NetId,
    ground: NetId,
}

impl Cell {
    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this cell.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// All transistors, indexable by [`TransistorId`].
    pub fn transistors(&self) -> &[Transistor] {
        &self.transistors
    }

    /// The transistor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this cell.
    pub fn transistor(&self, id: TransistorId) -> &Transistor {
        &self.transistors[id.index()]
    }

    /// Iterator over `(TransistorId, &Transistor)` pairs.
    pub fn transistor_ids(&self) -> impl Iterator<Item = (TransistorId, &Transistor)> {
        self.transistors
            .iter()
            .enumerate()
            .map(|(i, t)| (TransistorId(i as u32), t))
    }

    /// Primary input pins in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output pins in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The single output pin of a single-output cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no output.
    pub fn output(&self) -> NetId {
        self.outputs[0]
    }

    /// Power rail net.
    pub fn power(&self) -> NetId {
        self.power
    }

    /// Ground rail net.
    pub fn ground(&self) -> NetId {
        self.ground
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of transistors.
    pub fn num_transistors(&self) -> usize {
        self.transistors.len()
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name() == name)
            .map(|i| NetId(i as u32))
    }

    /// Looks a transistor up by instance name.
    pub fn find_transistor(&self, name: &str) -> Option<TransistorId> {
        self.transistors
            .iter()
            .position(|t| t.name() == name)
            .map(|i| TransistorId(i as u32))
    }

    /// Returns all transistors whose gate is connected to `net`.
    pub fn gate_loads(&self, net: NetId) -> Vec<TransistorId> {
        self.transistor_ids()
            .filter(|(_, t)| t.gate() == net)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns all transistors with a channel terminal (drain or source) on
    /// `net`.
    pub fn channel_neighbors(&self, net: NetId) -> Vec<TransistorId> {
        self.transistor_ids()
            .filter(|(_, t)| t.drain() == net || t.source() == net)
            .map(|(id, _)| id)
            .collect()
    }

    /// Renames the cell, keeping everything else intact.
    pub fn with_name(mut self, name: impl Into<String>) -> Cell {
        self.name = name.into();
        self
    }
}

/// Builder that assembles and validates a [`Cell`].
///
/// # Example
///
/// ```
/// use ca_netlist::{CellBuilder, MosKind, NetKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CellBuilder::new("INV");
/// let a = b.add_net("A", NetKind::Input);
/// let z = b.add_net("Z", NetKind::Output);
/// let vdd = b.add_net("VDD", NetKind::Power);
/// let vss = b.add_net("VSS", NetKind::Ground);
/// b.add_transistor("MP0", MosKind::Pmos, z, a, vdd, vdd, 300, 30)?;
/// b.add_transistor("MN0", MosKind::Nmos, z, a, vss, vss, 200, 30)?;
/// let cell = b.build()?;
/// assert_eq!(cell.num_transistors(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CellBuilder {
    name: String,
    nets: Vec<Net>,
    transistors: Vec<Transistor>,
}

impl CellBuilder {
    /// Starts building a cell with the given name.
    pub fn new(name: impl Into<String>) -> CellBuilder {
        CellBuilder {
            name: name.into(),
            nets: Vec::new(),
            transistors: Vec::new(),
        }
    }

    /// Adds a net, returning its id. If a net with the same name already
    /// exists its id is returned instead (the kind is left unchanged).
    pub fn add_net(&mut self, name: impl Into<String>, kind: NetKind) -> NetId {
        let name = name.into();
        if let Some(i) = self.nets.iter().position(|n| n.name() == name) {
            return NetId(i as u32);
        }
        self.nets.push(Net::new(name, kind));
        NetId((self.nets.len() - 1) as u32)
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Adds a transistor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Duplicate`] if a transistor with the same
    /// name exists, or [`NetlistError::UnknownNet`] if any terminal
    /// references an id that has not been added.
    #[allow(clippy::too_many_arguments)]
    pub fn add_transistor(
        &mut self,
        name: impl Into<String>,
        kind: MosKind,
        drain: NetId,
        gate: NetId,
        source: NetId,
        bulk: NetId,
        width_nm: u32,
        length_nm: u32,
    ) -> Result<TransistorId, NetlistError> {
        let name = name.into();
        if self.transistors.iter().any(|t| t.name() == name) {
            return Err(NetlistError::Duplicate(name));
        }
        for id in [drain, gate, source, bulk] {
            if id.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(format!("{id}")));
            }
        }
        self.transistors.push(Transistor::new(
            name, kind, drain, gate, source, bulk, width_nm, length_nm,
        ));
        Ok(TransistorId((self.transistors.len() - 1) as u32))
    }

    /// Test-only: pushes a transistor without the duplicate-name guard.
    ///
    /// [`CellBuilder::add_transistor`] makes a duplicate instance name
    /// unconstructible through every real route (builder, SPICE parse,
    /// corruption harness), so the `duplicate-device-name` lint rule —
    /// defense in depth against future importers that bypass the
    /// builder — needs this escape hatch to prove it fires.
    #[cfg(test)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_transistor_unchecked(
        &mut self,
        name: impl Into<String>,
        kind: MosKind,
        drain: NetId,
        gate: NetId,
        source: NetId,
        bulk: NetId,
        width_nm: u32,
        length_nm: u32,
    ) {
        self.transistors.push(Transistor::new(
            name.into(),
            kind,
            drain,
            gate,
            source,
            bulk,
            width_nm,
            length_nm,
        ));
    }

    /// Validates the structure and produces the immutable [`Cell`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] when the cell has no input, no
    /// output, no power/ground rail, duplicate net names, or a transistor
    /// gated by a rail-free floating net.
    pub fn build(self) -> Result<Cell, NetlistError> {
        if self.transistors.is_empty() {
            return Err(NetlistError::Invalid(format!(
                "cell `{}` has no transistors",
                self.name
            )));
        }
        self.finish()
    }

    /// Like [`CellBuilder::build`] but allows a transistor-less cell.
    ///
    /// Only the fault-injection harness ([`crate::corrupt`]) uses this:
    /// real flows must never see such a cell, but robustness tests need
    /// to construct one to prove it is caught downstream (the
    /// `no-transistors` lint rule).
    pub(crate) fn build_raw(self) -> Result<Cell, NetlistError> {
        self.finish()
    }

    /// Shared tail of `build`/`build_raw`: pin/rail validation and role
    /// assignment.
    fn finish(self) -> Result<Cell, NetlistError> {
        let mut seen = std::collections::BTreeSet::new();
        for net in &self.nets {
            if !seen.insert(net.name().to_string()) {
                return Err(NetlistError::Duplicate(net.name().to_string()));
            }
        }
        let ids = |kind: NetKind| -> Vec<NetId> {
            self.nets
                .iter()
                .enumerate()
                .filter(|(_, n)| n.kind() == kind)
                .map(|(i, _)| NetId(i as u32))
                .collect()
        };
        let inputs = ids(NetKind::Input);
        let outputs = ids(NetKind::Output);
        let power = ids(NetKind::Power);
        let ground = ids(NetKind::Ground);
        if inputs.is_empty() {
            return Err(NetlistError::Invalid(format!(
                "cell `{}` has no input pin",
                self.name
            )));
        }
        if outputs.is_empty() {
            return Err(NetlistError::Invalid(format!(
                "cell `{}` has no output pin",
                self.name
            )));
        }
        if power.len() != 1 || ground.len() != 1 {
            return Err(NetlistError::Invalid(format!(
                "cell `{}` must have exactly one power and one ground rail",
                self.name
            )));
        }
        Ok(Cell {
            name: self.name,
            nets: self.nets,
            transistors: self.transistors,
            inputs,
            outputs,
            power: power[0],
            ground: ground[0],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Cell {
        let mut b = CellBuilder::new("INV");
        let a = b.add_net("A", NetKind::Input);
        let z = b.add_net("Z", NetKind::Output);
        let vdd = b.add_net("VDD", NetKind::Power);
        let vss = b.add_net("VSS", NetKind::Ground);
        b.add_transistor("MP0", MosKind::Pmos, z, a, vdd, vdd, 300, 30)
            .unwrap();
        b.add_transistor("MN0", MosKind::Nmos, z, a, vss, vss, 200, 30)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_roles() {
        let cell = inverter();
        assert_eq!(cell.name(), "INV");
        assert_eq!(cell.num_inputs(), 1);
        assert_eq!(cell.outputs().len(), 1);
        assert_eq!(cell.net(cell.power()).name(), "VDD");
        assert_eq!(cell.net(cell.ground()).name(), "VSS");
    }

    #[test]
    fn add_net_deduplicates_by_name() {
        let mut b = CellBuilder::new("X");
        let a1 = b.add_net("A", NetKind::Input);
        let a2 = b.add_net("A", NetKind::Input);
        assert_eq!(a1, a2);
        assert_eq!(b.num_nets(), 1);
    }

    #[test]
    fn duplicate_transistor_name_rejected() {
        let mut b = CellBuilder::new("X");
        let a = b.add_net("A", NetKind::Input);
        let z = b.add_net("Z", NetKind::Output);
        let vdd = b.add_net("VDD", NetKind::Power);
        let vss = b.add_net("VSS", NetKind::Ground);
        b.add_transistor("M0", MosKind::Pmos, z, a, vdd, vdd, 1, 1)
            .unwrap();
        let err = b
            .add_transistor("M0", MosKind::Nmos, z, a, vss, vss, 1, 1)
            .unwrap_err();
        assert_eq!(err, NetlistError::Duplicate("M0".into()));
    }

    #[test]
    fn build_raw_allows_zero_transistors() {
        let mut b = CellBuilder::new("EMPTY");
        b.add_net("A", NetKind::Input);
        b.add_net("Z", NetKind::Output);
        b.add_net("VDD", NetKind::Power);
        b.add_net("VSS", NetKind::Ground);
        assert!(matches!(b.clone().build(), Err(NetlistError::Invalid(_))));
        let cell = b.build_raw().unwrap();
        assert_eq!(cell.num_transistors(), 0);
        assert_eq!(cell.name(), "EMPTY");
    }

    #[test]
    fn missing_rail_rejected() {
        let mut b = CellBuilder::new("X");
        let a = b.add_net("A", NetKind::Input);
        let z = b.add_net("Z", NetKind::Output);
        let vdd = b.add_net("VDD", NetKind::Power);
        b.add_transistor("M0", MosKind::Pmos, z, a, vdd, vdd, 1, 1)
            .unwrap();
        assert!(matches!(b.build(), Err(NetlistError::Invalid(_))));
    }

    #[test]
    fn terminal_accessors() {
        let cell = inverter();
        let t = cell.transistor(TransistorId(0));
        assert_eq!(t.terminal(Terminal::Gate), cell.inputs()[0]);
        assert_eq!(t.terminal(Terminal::Drain), t.drain());
        assert_eq!(
            t.other_channel_end(Terminal::Drain),
            t.terminal(Terminal::Source)
        );
    }

    #[test]
    fn gate_loads_and_channel_neighbors() {
        let cell = inverter();
        let a = cell.inputs()[0];
        let z = cell.output();
        assert_eq!(cell.gate_loads(a).len(), 2);
        assert_eq!(cell.channel_neighbors(z).len(), 2);
    }

    #[test]
    fn mos_kind_dual_and_letters() {
        assert_eq!(MosKind::Nmos.dual(), MosKind::Pmos);
        assert_eq!(MosKind::Pmos.dual(), MosKind::Nmos);
        assert_eq!(MosKind::Nmos.letter(), 'n');
        assert_eq!(Terminal::Drain.letter(), 'D');
    }

    #[test]
    fn find_by_name() {
        let cell = inverter();
        assert_eq!(cell.find_net("Z"), Some(cell.output()));
        assert!(cell.find_net("nope").is_none());
        assert_eq!(cell.find_transistor("MN0"), Some(TransistorId(1)));
        assert!(cell.find_transistor("nope").is_none());
    }
}
