//! Boolean expressions used as functional references for cells.
//!
//! An [`Expr`] describes the logic function a synthesized cell is supposed
//! to implement. The simulator tests use it as ground truth: a defect-free
//! switch-level simulation of a synthesized cell must agree with
//! [`Expr::eval`] on every static input pattern.

use std::fmt;

/// A Boolean expression over input pins `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// The value of input pin `i`.
    Var(u8),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction of all children.
    And(Vec<Expr>),
    /// Disjunction of all children.
    Or(Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable.
    pub fn var(i: u8) -> Expr {
        Expr::Var(i)
    }

    /// Convenience constructor for a negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Convenience constructor for a conjunction.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two operands are supplied.
    pub fn and(es: Vec<Expr>) -> Expr {
        assert!(es.len() >= 2, "And requires at least two operands");
        Expr::And(es)
    }

    /// Convenience constructor for a disjunction.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two operands are supplied.
    pub fn or(es: Vec<Expr>) -> Expr {
        assert!(es.len() >= 2, "Or requires at least two operands");
        Expr::Or(es)
    }

    /// Evaluates the expression under `assignment` (index = pin number).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Var(i) => assignment[*i as usize],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(es) => es.iter().all(|e| e.eval(assignment)),
            Expr::Or(es) => es.iter().any(|e| e.eval(assignment)),
        }
    }

    /// Highest variable index referenced, plus one (0 for constant-free
    /// expressions — impossible here since `Var` is the only leaf).
    pub fn num_vars(&self) -> usize {
        match self {
            Expr::Var(i) => *i as usize + 1,
            Expr::Not(e) => e.num_vars(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::num_vars).max().unwrap_or(0),
        }
    }

    /// Parses an expression like `!(A&B)|C` (variables `A`-`Z`, `&`, `|`,
    /// `!`, parentheses; `&` binds tighter than `|`).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Expr, String> {
        let tokens: Vec<char> = text.chars().filter(|c| !c.is_whitespace()).collect();
        let mut parser = ExprParser { tokens, pos: 0 };
        let expr = parser.or_expr()?;
        if parser.pos != parser.tokens.len() {
            return Err(format!(
                "unexpected `{}` at position {}",
                parser.tokens[parser.pos], parser.pos
            ));
        }
        Ok(expr)
    }

    /// Truth table as a bit vector of length `2^n`, LSB = all-zero input.
    ///
    /// Input pattern `p` maps bit `i` of `p` to pin `i`.
    pub fn truth_table(&self, n: usize) -> Vec<bool> {
        let mut table = Vec::with_capacity(1 << n);
        let mut assignment = vec![false; n];
        for p in 0..(1u32 << n) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (p >> i) & 1 == 1;
            }
            table.push(self.eval(&assignment));
        }
        table
    }
}

struct ExprParser {
    tokens: Vec<char>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<char> {
        self.tokens.get(self.pos).copied()
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut terms = vec![self.and_expr()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            Expr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut terms = vec![self.atom()?];
        while self.peek() == Some('&') {
            self.pos += 1;
            terms.push(self.atom()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            Expr::And(terms)
        })
    }

    fn atom(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some('!') => {
                self.pos += 1;
                Ok(Expr::not(self.atom()?))
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.or_expr()?;
                if self.peek() != Some(')') {
                    return Err(format!("expected `)` at position {}", self.pos));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) if c.is_ascii_uppercase() => {
                self.pos += 1;
                Ok(Expr::Var(c as u8 - b'A'))
            }
            other => Err(format!(
                "expected variable, `!` or `(`, found {other:?} at position {}",
                self.pos
            )),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(i) => write!(f, "{}", (b'A' + i) as char),
            Expr::Not(e) => write!(f, "!{e}"),
            Expr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "&")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_nand2() {
        let nand = Expr::not(Expr::and(vec![Expr::var(0), Expr::var(1)]));
        assert!(nand.eval(&[false, false]));
        assert!(nand.eval(&[true, false]));
        assert!(!nand.eval(&[true, true]));
    }

    #[test]
    fn truth_table_xor() {
        let xor = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1))]),
            Expr::and(vec![Expr::not(Expr::var(0)), Expr::var(1)]),
        ]);
        assert_eq!(xor.truth_table(2), vec![false, true, true, false]);
    }

    #[test]
    fn num_vars_counts_max_index() {
        let e = Expr::or(vec![Expr::var(0), Expr::var(3)]);
        assert_eq!(e.num_vars(), 4);
    }

    #[test]
    fn display_round_trips_structure() {
        let aoi = Expr::not(Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            Expr::var(2),
        ]));
        assert_eq!(aoi.to_string(), "!((A&B)|C)");
    }

    #[test]
    fn parse_respects_precedence() {
        // & binds tighter than |.
        let e = Expr::parse("A&B|C").unwrap();
        assert_eq!(
            e.truth_table(3),
            Expr::parse("(A&B)|C").unwrap().truth_table(3)
        );
        assert_ne!(
            e.truth_table(3),
            Expr::parse("A&(B|C)").unwrap().truth_table(3)
        );
    }

    #[test]
    fn parse_display_round_trip() {
        for text in ["!((A&B)|C)", "(A|B)", "!A", "((A&B)&C)"] {
            let e = Expr::parse(text).unwrap();
            let again = Expr::parse(&e.to_string()).unwrap();
            let n = e.num_vars();
            assert_eq!(e.truth_table(n), again.truth_table(n), "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "A&", "(A", "A)", "a", "A!B", "A &@ B"] {
            assert!(Expr::parse(bad).is_err(), "{bad:?}");
        }
    }

    mod fuzz {
        use super::super::Expr;
        use ca_rng::{Rng, SplitMix64};

        /// The expression parser never panics on random strings drawn
        /// from its own alphabet (seeded, fully deterministic).
        #[test]
        fn expr_parse_never_panics() {
            const ALPHABET: &[u8] = b"ABCD&|!() ";
            let mut rng = SplitMix64::new(0xE1F0);
            for _ in 0..512 {
                let len = rng.gen_index(41);
                let s: String = (0..len)
                    .map(|_| ALPHABET[rng.gen_index(ALPHABET.len())] as char)
                    .collect();
                let _ = Expr::parse(&s);
            }
        }
    }

    #[test]
    fn parse_handles_whitespace() {
        let e = Expr::parse("! ( A & B )").unwrap();
        assert_eq!(e.truth_table(2), vec![true, true, true, false]);
    }
}
