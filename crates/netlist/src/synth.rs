//! Static CMOS standard-cell synthesis.
//!
//! A [`StagePlan`] describes a cell as a sequence of inverting CMOS stages:
//! each [`Stage`] computes `out = NOT(expr)` where `expr` is an AND/OR tree
//! over primary inputs and earlier stage outputs. The synthesizer turns a
//! plan into a transistor [`Cell`]:
//!
//! - the NMOS pull-down network implements `expr` (series for AND, parallel
//!   for OR) between the stage output and ground;
//! - the PMOS pull-up network implements the dual of `expr` between the
//!   stage output and power.
//!
//! Drive strength is modelled by device replication in one of the two
//! configurations of the paper's Fig. 6: [`DriveStyle::SharedNets`]
//! duplicates each transistor in place (internal nodes shared), while
//! [`DriveStyle::SplitFingers`] duplicates whole series networks with
//! private internal nodes. Both compute the same function; telling them
//! apart is exactly the "equivalent structure" analysis of §V.B.

use crate::error::NetlistError;
use crate::expr::Expr;
use crate::model::{Cell, CellBuilder, MosKind, NetId, NetKind};

/// A signal referenced by a stage expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sig {
    /// Primary input pin `i`.
    Pin(u8),
    /// Output of stage `k` (must be an earlier stage).
    Stage(u8),
}

/// AND/OR tree over signals; the leaf level of a CMOS stage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StageExpr {
    /// A single transistor gated by the signal.
    Lit(Sig),
    /// Series composition in the pull-down network.
    And(Vec<StageExpr>),
    /// Parallel composition in the pull-down network.
    Or(Vec<StageExpr>),
}

impl StageExpr {
    /// Leaf constructor for a primary input.
    pub fn pin(i: u8) -> StageExpr {
        StageExpr::Lit(Sig::Pin(i))
    }

    /// Leaf constructor for a stage output.
    pub fn stage(k: u8) -> StageExpr {
        StageExpr::Lit(Sig::Stage(k))
    }

    /// Number of literal leaves (= transistors per network at drive 1).
    pub fn num_literals(&self) -> usize {
        match self {
            StageExpr::Lit(_) => 1,
            StageExpr::And(es) | StageExpr::Or(es) => es.iter().map(StageExpr::num_literals).sum(),
        }
    }

    fn visit_sigs(&self, f: &mut impl FnMut(Sig)) {
        match self {
            StageExpr::Lit(s) => f(*s),
            StageExpr::And(es) | StageExpr::Or(es) => {
                for e in es {
                    e.visit_sigs(f);
                }
            }
        }
    }
}

/// One inverting CMOS stage: `out = NOT(expr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stage {
    /// The pull-down expression of the stage.
    pub expr: StageExpr,
}

impl Stage {
    /// Creates a stage from its pull-down expression.
    pub fn new(expr: StageExpr) -> Stage {
        Stage { expr }
    }
}

/// A complete multi-stage gate plan. The last stage drives the cell output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StagePlan {
    /// Number of primary inputs.
    pub n_inputs: u8,
    /// Stages in topological order.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// Creates a plan, validating stage references.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] when the plan is empty, a stage
    /// references a pin `>= n_inputs`, or a stage references itself or a
    /// later stage.
    pub fn new(n_inputs: u8, stages: Vec<Stage>) -> Result<StagePlan, NetlistError> {
        if stages.is_empty() {
            return Err(NetlistError::Invalid("plan has no stages".into()));
        }
        for (k, stage) in stages.iter().enumerate() {
            let mut bad: Option<String> = None;
            stage.expr.visit_sigs(&mut |sig| match sig {
                Sig::Pin(i) if i >= n_inputs => {
                    bad = Some(format!("stage {k} references pin {i} >= {n_inputs}"));
                }
                Sig::Stage(j) if j as usize >= k => {
                    bad = Some(format!("stage {k} references stage {j} (not earlier)"));
                }
                _ => {}
            });
            if let Some(message) = bad {
                return Err(NetlistError::Invalid(message));
            }
        }
        Ok(StagePlan { n_inputs, stages })
    }

    /// A single-stage plan (e.g. NAND/NOR/AOI/OAI).
    ///
    /// # Errors
    ///
    /// See [`StagePlan::new`].
    pub fn single(n_inputs: u8, expr: StageExpr) -> Result<StagePlan, NetlistError> {
        StagePlan::new(n_inputs, vec![Stage::new(expr)])
    }

    /// Number of transistors the plan synthesizes to at drive 1.
    pub fn num_transistors(&self) -> usize {
        self.stages.iter().map(|s| 2 * s.expr.num_literals()).sum()
    }

    /// The Boolean function of the cell output as an [`Expr`] over the
    /// primary inputs.
    pub fn to_expr(&self) -> Expr {
        let mut outs: Vec<Expr> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let e = expr_of(&stage.expr, &outs);
            outs.push(Expr::not(e));
        }
        outs.pop().expect("plan validated non-empty")
    }
}

fn expr_of(e: &StageExpr, outs: &[Expr]) -> Expr {
    match e {
        StageExpr::Lit(Sig::Pin(i)) => Expr::Var(*i),
        StageExpr::Lit(Sig::Stage(k)) => outs[*k as usize].clone(),
        StageExpr::And(es) => Expr::And(es.iter().map(|e| expr_of(e, outs)).collect()),
        StageExpr::Or(es) => Expr::Or(es.iter().map(|e| expr_of(e, outs)).collect()),
    }
}

/// How drive strength > 1 replicates devices (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DriveStyle {
    /// Each transistor is duplicated in parallel sharing both channel nets
    /// (Fig. 6 configuration with the "red net" present).
    #[default]
    SharedNets,
    /// Whole pull networks are duplicated with private internal nodes
    /// (Fig. 6 configuration without the "red net").
    SplitFingers,
}

/// Device/net naming and sizing conventions, varied per technology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetlistStyle {
    /// Prefix for NMOS instance names (a running index is appended).
    pub nmos_prefix: String,
    /// Prefix for PMOS instance names.
    pub pmos_prefix: String,
    /// Prefix for internal net names.
    pub net_prefix: String,
    /// Input pin names, used in order (`A`, `B`, ... by default).
    pub pin_names: Vec<String>,
    /// Output pin name.
    pub out_name: String,
    /// Power rail name.
    pub vdd_name: String,
    /// Ground rail name.
    pub gnd_name: String,
    /// NMOS width in nanometres.
    pub nmos_width_nm: u32,
    /// PMOS width in nanometres.
    pub pmos_width_nm: u32,
    /// Channel length in nanometres.
    pub length_nm: u32,
    /// Optional seed; when set, the emitted transistor order is shuffled
    /// deterministically to emulate library-dependent netlist ordering.
    pub shuffle_seed: Option<u64>,
}

impl Default for NetlistStyle {
    fn default() -> NetlistStyle {
        NetlistStyle {
            nmos_prefix: "MN".into(),
            pmos_prefix: "MP".into(),
            net_prefix: "net".into(),
            pin_names: ["A", "B", "C", "D", "E", "F", "G", "H"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            out_name: "Z".into(),
            vdd_name: "VDD".into(),
            gnd_name: "VSS".into(),
            nmos_width_nm: 200,
            pmos_width_nm: 300,
            length_nm: 30,
            shuffle_seed: None,
        }
    }
}

/// A synthesized cell bundled with its functional reference.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthesizedCell {
    /// The transistor netlist.
    pub cell: Cell,
    /// The Boolean function the netlist implements.
    pub function: Expr,
    /// Drive factor used.
    pub drive: u8,
    /// Drive replication style used.
    pub style: DriveStyle,
}

/// Synthesizes `plan` into a transistor cell.
///
/// `drive` must be at least 1; `style` selects the Fig. 6 replication
/// configuration for `drive > 1`.
///
/// # Errors
///
/// Returns [`NetlistError::Invalid`] if the resulting netlist fails cell
/// validation (cannot normally happen for a validated plan).
///
/// # Example
///
/// ```
/// use ca_netlist::synth::{self, NetlistStyle, StagePlan, StageExpr, DriveStyle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nand2 = StagePlan::single(2, StageExpr::And(vec![
///     StageExpr::pin(0), StageExpr::pin(1),
/// ]))?;
/// let synth = synth::synthesize("NAND2", &nand2, 1, DriveStyle::SharedNets,
///                               &NetlistStyle::default())?;
/// assert_eq!(synth.cell.num_transistors(), 4);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    name: &str,
    plan: &StagePlan,
    drive: u8,
    style: DriveStyle,
    netlist_style: &NetlistStyle,
) -> Result<SynthesizedCell, NetlistError> {
    assert!(drive >= 1, "drive factor must be at least 1");
    let mut emitter = Emitter::new(name, plan, netlist_style)?;
    for (k, stage) in plan.stages.iter().enumerate() {
        let out = emitter.stage_out[k];
        let pd = emitter.gnd;
        let pu = emitter.vdd;
        for _rep in 0..drive {
            let fresh = style == DriveStyle::SplitFingers;
            emitter.emit_network(&stage.expr, MosKind::Nmos, out, pd, k, fresh);
            emitter.emit_network(&dual(&stage.expr), MosKind::Pmos, out, pu, k, fresh);
        }
    }
    let cell = emitter.finish()?;
    Ok(SynthesizedCell {
        cell,
        function: plan.to_expr(),
        drive,
        style,
    })
}

/// De Morgan dual: swaps AND and OR, leaves literals alone.
fn dual(e: &StageExpr) -> StageExpr {
    match e {
        StageExpr::Lit(s) => StageExpr::Lit(*s),
        StageExpr::And(es) => StageExpr::Or(es.iter().map(dual).collect()),
        StageExpr::Or(es) => StageExpr::And(es.iter().map(dual).collect()),
    }
}

struct DeviceSpec {
    kind: MosKind,
    drain: NetId,
    gate: NetId,
    source: NetId,
}

struct Emitter<'a> {
    builder: CellBuilder,
    style: &'a NetlistStyle,
    vdd: NetId,
    gnd: NetId,
    stage_out: Vec<NetId>,
    pins: Vec<NetId>,
    devices: Vec<DeviceSpec>,
    net_counter: usize,
    /// Cache of internal nets for SharedNets replication: keyed by
    /// (stage, position-path) so repeated emissions reuse the same nodes.
    shared_nets: std::collections::BTreeMap<(usize, MosKind, Vec<u16>), NetId>,
}

impl<'a> Emitter<'a> {
    fn new(
        name: &str,
        plan: &StagePlan,
        style: &'a NetlistStyle,
    ) -> Result<Emitter<'a>, NetlistError> {
        let mut builder = CellBuilder::new(name);
        let mut pins = Vec::new();
        for i in 0..plan.n_inputs {
            let pin_name = style
                .pin_names
                .get(i as usize)
                .cloned()
                .unwrap_or_else(|| format!("I{i}"));
            pins.push(builder.add_net(pin_name, NetKind::Input));
        }
        let n_stages = plan.stages.len();
        let mut stage_out = Vec::with_capacity(n_stages);
        for k in 0..n_stages {
            if k + 1 == n_stages {
                stage_out.push(builder.add_net(&style.out_name, NetKind::Output));
            } else {
                stage_out
                    .push(builder.add_net(format!("{}s{k}", style.net_prefix), NetKind::Internal));
            }
        }
        let vdd = builder.add_net(&style.vdd_name, NetKind::Power);
        let gnd = builder.add_net(&style.gnd_name, NetKind::Ground);
        Ok(Emitter {
            builder,
            style,
            vdd,
            gnd,
            stage_out,
            pins,
            devices: Vec::new(),
            net_counter: 0,
            shared_nets: std::collections::BTreeMap::new(),
        })
    }

    fn sig_net(&self, sig: Sig) -> NetId {
        match sig {
            Sig::Pin(i) => self.pins[i as usize],
            Sig::Stage(k) => self.stage_out[k as usize],
        }
    }

    fn internal_net(&mut self, stage: usize, kind: MosKind, path: &[u16], fresh: bool) -> NetId {
        if !fresh {
            let key = (stage, kind, path.to_vec());
            if let Some(&net) = self.shared_nets.get(&key) {
                return net;
            }
            let net = self.new_net();
            self.shared_nets.insert(key, net);
            return net;
        }
        self.new_net()
    }

    fn new_net(&mut self) -> NetId {
        let name = format!("{}{}", self.style.net_prefix, self.net_counter);
        self.net_counter += 1;
        self.builder.add_net(name, NetKind::Internal)
    }

    /// Emits the two-terminal network for `expr` between `top` (stage
    /// output side) and `bottom` (rail side).
    #[allow(clippy::too_many_arguments)]
    fn emit_network(
        &mut self,
        expr: &StageExpr,
        kind: MosKind,
        top: NetId,
        bottom: NetId,
        stage: usize,

        fresh: bool,
    ) {
        let mut path = Vec::new();
        self.emit_rec(expr, kind, top, bottom, stage, fresh, &mut path);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_rec(
        &mut self,
        expr: &StageExpr,
        kind: MosKind,
        top: NetId,
        bottom: NetId,
        stage: usize,

        fresh: bool,
        path: &mut Vec<u16>,
    ) {
        match expr {
            StageExpr::Lit(sig) => {
                let gate = self.sig_net(*sig);
                self.devices.push(DeviceSpec {
                    kind,
                    drain: top,
                    gate,
                    source: bottom,
                });
            }
            StageExpr::And(es) => {
                // Series chain between top and bottom.
                let mut upper = top;
                for (i, e) in es.iter().enumerate() {
                    let lower = if i + 1 == es.len() {
                        bottom
                    } else {
                        path.push(i as u16);
                        let net = self.internal_net(stage, kind, path, fresh);
                        path.pop();
                        net
                    };
                    path.push(i as u16);
                    self.emit_rec(e, kind, upper, lower, stage, fresh, path);
                    path.pop();
                    upper = lower;
                }
            }
            StageExpr::Or(es) => {
                for (i, e) in es.iter().enumerate() {
                    path.push(1000 + i as u16);
                    self.emit_rec(e, kind, top, bottom, stage, fresh, path);
                    path.pop();
                }
            }
        }
    }

    fn finish(mut self) -> Result<Cell, NetlistError> {
        // Optionally shuffle device order to emulate foreign netlist styles.
        if let Some(seed) = self.style.shuffle_seed {
            shuffle(&mut self.devices, seed);
        }
        let (mut n_idx, mut p_idx) = (0usize, 0usize);
        for spec in &self.devices {
            let (prefix, idx, width) = match spec.kind {
                MosKind::Nmos => {
                    n_idx += 1;
                    (&self.style.nmos_prefix, n_idx - 1, self.style.nmos_width_nm)
                }
                MosKind::Pmos => {
                    p_idx += 1;
                    (&self.style.pmos_prefix, p_idx - 1, self.style.pmos_width_nm)
                }
            };
            let bulk = match spec.kind {
                MosKind::Nmos => self.gnd,
                MosKind::Pmos => self.vdd,
            };
            self.builder.add_transistor(
                format!("{prefix}{idx}"),
                spec.kind,
                spec.drain,
                spec.gate,
                spec.source,
                bulk,
                width,
                self.style.length_nm,
            )?;
        }
        self.builder.build()
    }
}

/// Deterministic Fisher-Yates over the shared workspace PRNG.
fn shuffle<T>(items: &mut [T], seed: u64) {
    use ca_rng::Rng as _;
    ca_rng::SplitMix64::new(seed).shuffle(items);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2_plan() -> StagePlan {
        StagePlan::single(
            2,
            StageExpr::And(vec![StageExpr::pin(0), StageExpr::pin(1)]),
        )
        .unwrap()
    }

    #[test]
    fn nand2_has_four_transistors() {
        let s = synthesize(
            "NAND2",
            &nand2_plan(),
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.cell.num_transistors(), 4);
        assert_eq!(s.cell.num_inputs(), 2);
        // Pull-down is a series chain: exactly one internal net.
        let internals = s
            .cell
            .nets()
            .iter()
            .filter(|n| n.kind() == NetKind::Internal)
            .count();
        assert_eq!(internals, 1);
    }

    #[test]
    fn nand2_function_is_nand() {
        let s = synthesize(
            "NAND2",
            &nand2_plan(),
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.function.truth_table(2), vec![true, true, true, false]);
    }

    #[test]
    fn drive_2_shared_duplicates_in_place() {
        let plan = nand2_plan();
        let s = synthesize(
            "NAND2X2",
            &plan,
            2,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.cell.num_transistors(), 8);
        // SharedNets keeps one internal pull-down node (the "red net").
        let internals = s
            .cell
            .nets()
            .iter()
            .filter(|n| n.kind() == NetKind::Internal)
            .count();
        assert_eq!(internals, 1);
    }

    #[test]
    fn drive_2_split_adds_private_nodes() {
        let plan = nand2_plan();
        let s = synthesize(
            "NAND2X2S",
            &plan,
            2,
            DriveStyle::SplitFingers,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.cell.num_transistors(), 8);
        let internals = s
            .cell
            .nets()
            .iter()
            .filter(|n| n.kind() == NetKind::Internal)
            .count();
        assert_eq!(internals, 2);
    }

    #[test]
    fn multi_stage_and2() {
        // AND2 = NAND2 + INV.
        let plan = StagePlan::new(
            2,
            vec![
                Stage::new(StageExpr::And(vec![StageExpr::pin(0), StageExpr::pin(1)])),
                Stage::new(StageExpr::stage(0)),
            ],
        )
        .unwrap();
        let s = synthesize(
            "AND2",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.cell.num_transistors(), 6);
        assert_eq!(s.function.truth_table(2), vec![false, false, false, true]);
    }

    #[test]
    fn plan_validation_rejects_forward_reference() {
        let bad = StagePlan::new(1, vec![Stage::new(StageExpr::stage(0))]);
        assert!(bad.is_err());
        let bad_pin = StagePlan::single(1, StageExpr::pin(1));
        assert!(bad_pin.is_err());
    }

    #[test]
    fn shuffle_changes_order_but_not_structure() {
        let plan = nand2_plan();
        let base = synthesize(
            "NAND2",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        let style = NetlistStyle {
            shuffle_seed: Some(42),
            ..NetlistStyle::default()
        };
        let shuffled = synthesize("NAND2", &plan, 1, DriveStyle::SharedNets, &style).unwrap();
        assert_eq!(base.cell.num_transistors(), shuffled.cell.num_transistors());
        // Same multiset of (kind, gate-name) pairs.
        let fingerprint = |c: &Cell| {
            let mut v: Vec<(MosKind, String)> = c
                .transistors()
                .iter()
                .map(|t| (t.kind(), c.net(t.gate()).name().to_string()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(fingerprint(&base.cell), fingerprint(&shuffled.cell));
    }

    #[test]
    fn num_transistors_matches_plan_prediction() {
        let plan = StagePlan::new(
            3,
            vec![
                Stage::new(StageExpr::Or(vec![
                    StageExpr::And(vec![StageExpr::pin(0), StageExpr::pin(1)]),
                    StageExpr::pin(2),
                ])),
                Stage::new(StageExpr::stage(0)),
            ],
        )
        .unwrap();
        assert_eq!(plan.num_transistors(), 8);
        let s = synthesize(
            "AO21",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        assert_eq!(s.cell.num_transistors(), 8);
    }

    #[test]
    fn round_trips_through_spice() {
        let s = synthesize(
            "NAND2",
            &nand2_plan(),
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        let text = crate::writer::to_spice(&s.cell);
        let parsed = crate::spice::parse_cell(&text).unwrap();
        assert_eq!(parsed, s.cell);
    }
}
