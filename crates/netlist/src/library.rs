//! Synthetic standard-cell library generation.
//!
//! Stands in for the paper's proprietary C40 / 28SOI / C28 libraries: a
//! catalog of ~45 combinational functions is rendered per technology with
//! that technology's netlist conventions (device/net naming, sizing,
//! device ordering) and expanded into drive-strength and skew variants.
//! Each technology also owns a few *exclusive* functions that no other
//! technology has — these are the paper's poorly-predicted "new logic
//! function" cells (§V.B).
//!
//! Everything is deterministic given the [`LibraryConfig`] seed.

use crate::expr::Expr;
use crate::model::Cell;
use crate::synth::{synthesize, DriveStyle, NetlistStyle, Stage, StageExpr, StagePlan};
use std::fmt;

/// The three synthetic technologies mirroring the paper's dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Technology {
    /// 40 nm bulk technology (paper: 446 cells).
    C40,
    /// 28 nm SOI technology (paper: 825 cells) — the training corpus.
    Soi28,
    /// 28 nm bulk technology (paper: 441 cells).
    C28,
}

impl Technology {
    /// All technologies, in paper order.
    pub const ALL: [Technology; 3] = [Technology::C40, Technology::Soi28, Technology::C28];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Technology::C40 => "C40",
            Technology::Soi28 => "28SOI",
            Technology::C28 => "C28",
        }
    }

    /// Approximate number of cells the paper reports for this technology.
    pub fn paper_cell_count(self) -> usize {
        match self {
            Technology::C40 => 446,
            Technology::Soi28 => 825,
            Technology::C28 => 441,
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Netlist conventions of one technology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TechStyle {
    /// The technology this style renders.
    pub tech: Technology,
    /// Base netlist style (prefixes, rails, sizes).
    pub base: NetlistStyle,
    /// Per-technology seed mixed into each cell's device-order shuffle.
    pub order_seed: u64,
}

impl TechStyle {
    /// The default conventions for `tech`.
    pub fn for_tech(tech: Technology) -> TechStyle {
        let base = match tech {
            Technology::C40 => NetlistStyle {
                nmos_prefix: "MN".into(),
                pmos_prefix: "MP".into(),
                net_prefix: "net".into(),
                vdd_name: "VDD".into(),
                gnd_name: "VSS".into(),
                nmos_width_nm: 300,
                pmos_width_nm: 450,
                length_nm: 40,
                ..NetlistStyle::default()
            },
            Technology::Soi28 => NetlistStyle {
                nmos_prefix: "M".into(),
                pmos_prefix: "MP".into(),
                net_prefix: "n".into(),
                vdd_name: "VDD".into(),
                gnd_name: "GND".into(),
                nmos_width_nm: 200,
                pmos_width_nm: 260,
                length_nm: 28,
                ..NetlistStyle::default()
            },
            Technology::C28 => NetlistStyle {
                nmos_prefix: "XMN".into(),
                pmos_prefix: "XMP".into(),
                net_prefix: "int".into(),
                vdd_name: "VPWR".into(),
                gnd_name: "VGND".into(),
                nmos_width_nm: 220,
                pmos_width_nm: 300,
                length_nm: 28,
                ..NetlistStyle::default()
            },
        };
        let order_seed = match tech {
            Technology::C40 => 0x0C40,
            Technology::Soi28 => 0x2850,
            Technology::C28 => 0x0C28,
        };
        TechStyle {
            tech,
            base,
            order_seed,
        }
    }
}

/// A catalog entry: a named function with its gate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellTemplate {
    /// Function name (e.g. `AOI21`).
    pub name: String,
    /// The multi-stage plan implementing the function.
    pub plan: StagePlan,
}

impl CellTemplate {
    fn new(name: &str, plan: StagePlan) -> CellTemplate {
        CellTemplate {
            name: name.into(),
            plan,
        }
    }
}

fn lit(i: u8) -> StageExpr {
    StageExpr::pin(i)
}

fn and_of(pins: &[u8]) -> StageExpr {
    StageExpr::And(pins.iter().map(|&i| lit(i)).collect())
}

fn or_of(pins: &[u8]) -> StageExpr {
    StageExpr::Or(pins.iter().map(|&i| lit(i)).collect())
}

/// `AOI` pull-down: OR of AND groups. Groups of size 1 collapse to literals.
fn aoi_expr(groups: &[&[u8]]) -> StageExpr {
    let terms: Vec<StageExpr> = groups
        .iter()
        .map(|g| if g.len() == 1 { lit(g[0]) } else { and_of(g) })
        .collect();
    if terms.len() == 1 {
        terms.into_iter().next().expect("non-empty group list")
    } else {
        StageExpr::Or(terms)
    }
}

/// `OAI` pull-down: AND of OR groups.
fn oai_expr(groups: &[&[u8]]) -> StageExpr {
    let terms: Vec<StageExpr> = groups
        .iter()
        .map(|g| if g.len() == 1 { lit(g[0]) } else { or_of(g) })
        .collect();
    if terms.len() == 1 {
        terms.into_iter().next().expect("non-empty group list")
    } else {
        StageExpr::And(terms)
    }
}

fn single(n: u8, expr: StageExpr) -> StagePlan {
    StagePlan::single(n, expr).expect("catalog plan is valid")
}

fn plan(n: u8, stages: Vec<Stage>) -> StagePlan {
    StagePlan::new(n, stages).expect("catalog plan is valid")
}

fn inverting_plus_buffer(n: u8, expr: StageExpr) -> StagePlan {
    plan(n, vec![Stage::new(expr), Stage::new(StageExpr::stage(0))])
}

/// XOR2 plan: input inverters + AOI22-style stage (12 transistors).
fn xor2_plan() -> StagePlan {
    plan(
        2,
        vec![
            Stage::new(lit(0)), // s0 = !A
            Stage::new(lit(1)), // s1 = !B
            Stage::new(StageExpr::Or(vec![
                StageExpr::And(vec![lit(0), lit(1)]),
                StageExpr::And(vec![StageExpr::stage(0), StageExpr::stage(1)]),
            ])), // Z = !(AB | !A!B) = XOR
        ],
    )
}

/// XNOR2 plan (12 transistors).
fn xnor2_plan() -> StagePlan {
    plan(
        2,
        vec![
            Stage::new(lit(0)),
            Stage::new(lit(1)),
            Stage::new(StageExpr::Or(vec![
                StageExpr::And(vec![lit(0), StageExpr::stage(1)]),
                StageExpr::And(vec![StageExpr::stage(0), lit(1)]),
            ])), // Z = !(A!B | !AB) = XNOR
        ],
    )
}

/// XOR3 plan (24 transistors).
fn xor3_plan() -> StagePlan {
    plan(
        3,
        vec![
            Stage::new(lit(0)), // s0 = !A
            Stage::new(lit(1)), // s1 = !B
            Stage::new(StageExpr::Or(vec![
                StageExpr::And(vec![lit(0), StageExpr::stage(1)]),
                StageExpr::And(vec![StageExpr::stage(0), lit(1)]),
            ])), // s2 = XNOR(A,B)
            Stage::new(StageExpr::stage(2)), // s3 = XOR(A,B)
            Stage::new(lit(2)), // s4 = !C
            Stage::new(StageExpr::Or(vec![
                StageExpr::And(vec![StageExpr::stage(3), lit(2)]),
                StageExpr::And(vec![StageExpr::stage(2), StageExpr::stage(4)]),
            ])), // s5 = !(xC | !x!C) = XOR(x, C)
        ],
    )
}

/// MUX2 plan: Z = S ? B : A (select inverter + AOI + output inverter).
fn mux2_plan(inverted: bool) -> StagePlan {
    let core = vec![
        Stage::new(lit(2)), // s0 = !S
        Stage::new(StageExpr::Or(vec![
            StageExpr::And(vec![lit(1), lit(2)]),              // B & S
            StageExpr::And(vec![lit(0), StageExpr::stage(0)]), // A & !S
        ])), // s1 = !(BS | A!S) = MUXI
    ];
    if inverted {
        plan(3, core)
    } else {
        let mut stages = core;
        stages.push(Stage::new(StageExpr::stage(1)));
        plan(3, stages)
    }
}

/// Majority-of-three pull-down.
fn maj3_expr() -> StageExpr {
    StageExpr::Or(vec![
        StageExpr::And(vec![lit(0), lit(1)]),
        StageExpr::And(vec![lit(0), lit(2)]),
        StageExpr::And(vec![lit(1), lit(2)]),
    ])
}

/// The shared function catalog (available in every technology).
pub fn base_catalog() -> Vec<CellTemplate> {
    let mut out = Vec::new();
    out.push(CellTemplate::new("INV", single(1, lit(0))));
    out.push(CellTemplate::new("BUF", inverting_plus_buffer(1, lit(0))));
    for k in 2..=5u8 {
        let pins: Vec<u8> = (0..k).collect();
        out.push(CellTemplate::new(
            &format!("NAND{k}"),
            single(k, and_of(&pins)),
        ));
        out.push(CellTemplate::new(
            &format!("NOR{k}"),
            single(k, or_of(&pins)),
        ));
        out.push(CellTemplate::new(
            &format!("AND{k}"),
            inverting_plus_buffer(k, and_of(&pins)),
        ));
        out.push(CellTemplate::new(
            &format!("OR{k}"),
            inverting_plus_buffer(k, or_of(&pins)),
        ));
    }
    // AOI / OAI family.
    let aoi_cases: [(&str, &[&[u8]], u8); 10] = [
        ("21", &[&[0, 1], &[2]], 3),
        ("22", &[&[0, 1], &[2, 3]], 4),
        ("211", &[&[0, 1], &[2], &[3]], 4),
        ("221", &[&[0, 1], &[2, 3], &[4]], 5),
        ("222", &[&[0, 1], &[2, 3], &[4, 5]], 6),
        ("31", &[&[0, 1, 2], &[3]], 4),
        ("32", &[&[0, 1, 2], &[3, 4]], 5),
        ("33", &[&[0, 1, 2], &[3, 4, 5]], 6),
        ("311", &[&[0, 1, 2], &[3], &[4]], 5),
        ("41", &[&[0, 1, 2, 3], &[4]], 5),
    ];
    for (tag, groups, n) in aoi_cases {
        out.push(CellTemplate::new(
            &format!("AOI{tag}"),
            single(n, aoi_expr(groups)),
        ));
        out.push(CellTemplate::new(
            &format!("OAI{tag}"),
            single(n, oai_expr(groups)),
        ));
        out.push(CellTemplate::new(
            &format!("AO{tag}"),
            inverting_plus_buffer(n, aoi_expr(groups)),
        ));
        out.push(CellTemplate::new(
            &format!("OA{tag}"),
            inverting_plus_buffer(n, oai_expr(groups)),
        ));
    }
    out.push(CellTemplate::new("XOR2", xor2_plan()));
    out.push(CellTemplate::new("XNOR2", xnor2_plan()));
    out.push(CellTemplate::new("MUX2", mux2_plan(false)));
    out.push(CellTemplate::new("MUX2I", mux2_plan(true)));
    out
}

/// Technology-exclusive functions (the "new logic function" cells of §V.B).
pub fn exclusive_catalog(tech: Technology) -> Vec<CellTemplate> {
    match tech {
        Technology::Soi28 => vec![
            CellTemplate::new("MAJ3I", single(3, maj3_expr())),
            CellTemplate::new(
                "NAND2B",
                plan(
                    2,
                    vec![
                        Stage::new(lit(0)),
                        Stage::new(StageExpr::And(vec![StageExpr::stage(0), lit(1)])),
                    ],
                ),
            ),
        ],
        Technology::C28 => vec![
            CellTemplate::new("XOR3", xor3_plan()),
            CellTemplate::new("MAJ3", inverting_plus_buffer(3, maj3_expr())),
            CellTemplate::new(
                "NOR2B",
                plan(
                    2,
                    vec![
                        Stage::new(lit(0)),
                        Stage::new(StageExpr::Or(vec![StageExpr::stage(0), lit(1)])),
                    ],
                ),
            ),
            CellTemplate::new(
                "AOI2BB1",
                plan(
                    3,
                    vec![
                        Stage::new(lit(0)),
                        Stage::new(lit(1)),
                        Stage::new(StageExpr::Or(vec![
                            StageExpr::And(vec![StageExpr::stage(0), StageExpr::stage(1)]),
                            lit(2),
                        ])),
                    ],
                ),
            ),
        ],
        Technology::C40 => vec![
            CellTemplate::new(
                "MUX2B",
                plan(
                    3,
                    vec![
                        Stage::new(lit(2)),
                        Stage::new(lit(0)),
                        Stage::new(StageExpr::Or(vec![
                            StageExpr::And(vec![lit(1), lit(2)]),
                            StageExpr::And(vec![StageExpr::stage(1), StageExpr::stage(0)]),
                        ])),
                    ],
                ),
            ),
            CellTemplate::new(
                "NAND3B",
                plan(
                    3,
                    vec![
                        Stage::new(lit(0)),
                        Stage::new(StageExpr::And(vec![StageExpr::stage(0), lit(1), lit(2)])),
                    ],
                ),
            ),
        ],
    }
}

/// A generated library cell with provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LibraryCell {
    /// The transistor netlist.
    pub cell: Cell,
    /// Functional reference.
    pub function: Expr,
    /// Catalog template the cell came from.
    pub template: String,
    /// Drive factor.
    pub drive: u8,
    /// Replication style (meaningful for drive > 1).
    pub style: DriveStyle,
}

/// A generated standard-cell library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Library {
    /// The technology the library belongs to.
    pub technology: Technology,
    /// All cells.
    pub cells: Vec<LibraryCell>,
}

impl Library {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterator over the raw [`Cell`]s.
    pub fn iter_cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter().map(|c| &c.cell)
    }
}

/// Parameters of library generation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LibraryConfig {
    /// Technology to render.
    pub tech: Technology,
    /// Skip catalog entries with more inputs than this (runtime control:
    /// the CA-matrix has `4^n` rows).
    pub max_inputs: u8,
    /// Skip variants that exceed this transistor count.
    pub max_transistors: usize,
    /// Drive factors to expand in [`DriveStyle::SharedNets`].
    pub shared_drives: Vec<u8>,
    /// Drive factors to also expand in [`DriveStyle::SplitFingers`].
    pub split_drives: Vec<u8>,
    /// Generate a 25%-wider "skew" sizing variant of every cell.
    pub skew_variants: bool,
    /// Threshold-flavor variants as `(suffix, width scale)` pairs, e.g.
    /// `("LVT", 0.9)` / `("HVT", 1.1)`. Real libraries ship every cell in
    /// several VT flavors that differ only in sizing/implant, never in
    /// topology. Empty (the default constructors) generates none.
    pub vt_variants: Vec<(String, f32)>,
    /// Include the technology-exclusive functions.
    pub include_exclusive: bool,
    /// Fraction of the shared catalog each technology keeps; the kept
    /// subset is a deterministic per-technology selection, so different
    /// technologies drop *different* templates. `1.0` keeps everything.
    pub template_keep_fraction: f64,
}

impl LibraryConfig {
    /// Full-size configuration approximating the paper's library scale.
    pub fn full(tech: Technology) -> LibraryConfig {
        LibraryConfig {
            tech,
            max_inputs: 6,
            max_transistors: 48,
            shared_drives: vec![1, 2, 3, 4],
            split_drives: vec![2, 4],
            skew_variants: true,
            vt_variants: Vec::new(),
            include_exclusive: true,
            template_keep_fraction: 1.0,
        }
    }

    /// Small configuration for unit tests and quick experiments.
    pub fn quick(tech: Technology) -> LibraryConfig {
        LibraryConfig {
            tech,
            max_inputs: 3,
            max_transistors: 16,
            shared_drives: vec![1, 2],
            split_drives: vec![2],
            skew_variants: false,
            vt_variants: Vec::new(),
            include_exclusive: true,
            template_keep_fraction: 1.0,
        }
    }
}

/// Generates the synthetic library for `config`.
///
/// The result is fully deterministic: per-cell device ordering is shuffled
/// with a seed derived from the technology and the cell name.
pub fn generate_library(config: &LibraryConfig) -> Library {
    let style = TechStyle::for_tech(config.tech);
    let mut templates = base_catalog();
    if config.include_exclusive {
        templates.extend(exclusive_catalog(config.tech));
    }
    let mut cells = Vec::new();
    let keep_threshold = (config.template_keep_fraction.clamp(0.0, 1.0) * 1000.0) as u64;
    let is_exclusive: std::collections::BTreeSet<String> = exclusive_catalog(config.tech)
        .into_iter()
        .map(|t| t.name)
        .collect();
    for template in &templates {
        if template.plan.n_inputs > config.max_inputs {
            continue;
        }
        // Per-technology catalog subset: drop a deterministic selection
        // of shared templates (exclusive ones always stay).
        if !is_exclusive.contains(&template.name) {
            let tag = format!("{}:{}", config.tech.name(), template.name);
            let h = mix_seed(0x009E_3717, &tag);
            if h % 1000 >= keep_threshold {
                continue;
            }
        }
        let mut variants: Vec<(u8, DriveStyle)> = config
            .shared_drives
            .iter()
            .map(|&d| (d, DriveStyle::SharedNets))
            .collect();
        variants.extend(
            config
                .split_drives
                .iter()
                .filter(|&&d| d > 1)
                .map(|&d| (d, DriveStyle::SplitFingers)),
        );
        for (drive, drive_style) in variants {
            let count = template.plan.num_transistors() * drive as usize;
            if count > config.max_transistors {
                continue;
            }
            let skews: &[(&str, f32)] = if config.skew_variants {
                &[("", 1.0), ("S", 1.25)]
            } else {
                &[("", 1.0)]
            };
            // VT flavors compose with skews: every (skew, flavor) pair is
            // its own catalog entry, like SVT/LVT/HVT rows in a real
            // library. The base flavor (empty suffix, scale 1.0) is
            // always generated.
            let mut flavors: Vec<(String, f32)> = vec![(String::new(), 1.0)];
            flavors.extend(config.vt_variants.iter().cloned());
            for (skew_tag, skew) in skews {
                for (vt_tag, vt_scale) in &flavors {
                    let suffix = match drive_style {
                        DriveStyle::SharedNets => String::new(),
                        DriveStyle::SplitFingers => "F".to_string(),
                    };
                    let name = format!(
                        "{}_{}X{}{}{}{}",
                        config.tech.name(),
                        template.name,
                        drive,
                        suffix,
                        skew_tag,
                        vt_tag
                    );
                    let scale = skew * vt_scale;
                    let mut netlist_style = style.base.clone();
                    netlist_style.nmos_width_nm =
                        (netlist_style.nmos_width_nm as f32 * scale) as u32;
                    netlist_style.pmos_width_nm =
                        (netlist_style.pmos_width_nm as f32 * scale) as u32;
                    netlist_style.shuffle_seed = Some(mix_seed(style.order_seed, &name));
                    let synth =
                        synthesize(&name, &template.plan, drive, drive_style, &netlist_style)
                            .expect("catalog synthesis cannot fail");
                    cells.push(LibraryCell {
                        cell: synth.cell,
                        function: synth.function,
                        template: template.name.clone(),
                        drive,
                        style: drive_style,
                    });
                }
            }
        }
    }
    Library {
        technology: config.tech,
        cells,
    }
}

fn mix_seed(seed: u64, name: &str) -> u64 {
    let mut h = seed ^ 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_plans_are_valid_and_sized() {
        for t in base_catalog() {
            assert!(t.plan.num_transistors() >= 2, "{}", t.name);
            assert!(t.plan.n_inputs >= 1);
        }
    }

    #[test]
    fn quick_library_generates_deterministically() {
        let config = LibraryConfig::quick(Technology::Soi28);
        let a = generate_library(&config);
        let b = generate_library(&config);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.cells.iter().all(|c| c.cell.num_transistors() <= 16));
    }

    #[test]
    fn technologies_share_functions_but_not_netlist_text() {
        let soi = generate_library(&LibraryConfig::quick(Technology::Soi28));
        let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
        let soi_nand2 = soi
            .cells
            .iter()
            .find(|c| c.template == "NAND2" && c.drive == 1)
            .unwrap();
        let c28_nand2 = c28
            .cells
            .iter()
            .find(|c| c.template == "NAND2" && c.drive == 1)
            .unwrap();
        assert_eq!(
            soi_nand2.function.truth_table(2),
            c28_nand2.function.truth_table(2)
        );
        // Same structure, different netlist conventions.
        let soi_text = crate::writer::to_spice(&soi_nand2.cell);
        let c28_text = crate::writer::to_spice(&c28_nand2.cell);
        assert_ne!(soi_text, c28_text);
    }

    #[test]
    fn exclusive_functions_do_not_overlap() {
        let soi: Vec<String> = exclusive_catalog(Technology::Soi28)
            .into_iter()
            .map(|t| t.name)
            .collect();
        let c28: Vec<String> = exclusive_catalog(Technology::C28)
            .into_iter()
            .map(|t| t.name)
            .collect();
        for name in &soi {
            assert!(!c28.contains(name));
        }
    }

    #[test]
    fn vt_variants_multiply_cells_without_changing_topology() {
        let base = generate_library(&LibraryConfig::quick(Technology::C40));
        let flavored = generate_library(&LibraryConfig {
            vt_variants: vec![("LVT".into(), 0.9), ("HVT".into(), 1.1)],
            ..LibraryConfig::quick(Technology::C40)
        });
        assert_eq!(flavored.len(), 3 * base.len());
        let lvt = flavored
            .cells
            .iter()
            .find(|c| c.cell.name().ends_with("LVT"))
            .unwrap();
        let svt = flavored
            .cells
            .iter()
            .find(|c| {
                c.template == lvt.template
                    && c.drive == lvt.drive
                    && c.style == lvt.style
                    && !c.cell.name().ends_with("VT")
            })
            .unwrap();
        // Same device count and function, different sizing flavor.
        assert_eq!(lvt.cell.num_transistors(), svt.cell.num_transistors());
        assert_eq!(
            lvt.function.truth_table(lvt.cell.num_inputs()),
            svt.function.truth_table(svt.cell.num_inputs())
        );
    }

    #[test]
    fn full_config_reaches_realistic_scale() {
        let lib = generate_library(&LibraryConfig::full(Technology::Soi28));
        assert!(lib.len() >= 200, "got {}", lib.len());
        assert!(lib.cells.iter().all(|c| c.cell.num_transistors() <= 48));
    }

    #[test]
    fn xor3_truth_table() {
        let x = xor3_plan().to_expr();
        let tt = x.truth_table(3);
        #[allow(clippy::needless_range_loop)] // p is the input pattern
        for p in 0..8usize {
            let ones = p.count_ones() % 2 == 1;
            assert_eq!(tt[p], ones, "pattern {p}");
        }
    }

    #[test]
    fn mux2_truth_table() {
        // Z = S ? B : A with pins (A=0, B=1, S=2).
        let m = mux2_plan(false).to_expr();
        let tt = m.truth_table(3);
        #[allow(clippy::needless_range_loop)] // p is the input pattern
        for p in 0..8usize {
            let a = p & 1 == 1;
            let b = p & 2 == 2;
            let s = p & 4 == 4;
            assert_eq!(tt[p], if s { b } else { a }, "pattern {p}");
        }
    }

    #[test]
    fn maj3_truth_table() {
        let m = inverting_plus_buffer(3, maj3_expr()).to_expr();
        let tt = m.truth_table(3);
        #[allow(clippy::needless_range_loop)] // p is the input pattern
        for p in 0..8usize {
            assert_eq!(tt[p], (p as u32).count_ones() >= 2, "pattern {p}");
        }
    }
}
