//! Error type of the CA-matrix and flow layers.

use std::fmt;

/// Errors raised while canonicalizing cells or running generation flows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The defect-free simulation produced a non-binary value, so the cell
    /// cannot be characterized (broken netlist, floating output, ...).
    GoldenNotBinary {
        /// Cell being characterized.
        cell: String,
        /// Stimulus index that failed.
        stimulus: usize,
    },
    /// No trained group matches the cell's (inputs, transistors) key.
    NoMatchingGroup {
        /// Cell that could not be dispatched.
        cell: String,
        /// Number of primary inputs.
        inputs: usize,
        /// Number of transistors.
        transistors: usize,
    },
    /// The training corpus for a group was empty.
    EmptyTrainingSet,
    /// A cell violates a structural assumption (documented per call site).
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GoldenNotBinary { cell, stimulus } => write!(
                f,
                "golden simulation of `{cell}` is not binary under stimulus {stimulus}"
            ),
            CoreError::NoMatchingGroup {
                cell,
                inputs,
                transistors,
            } => write!(
                f,
                "no trained group for `{cell}` ({inputs} inputs, {transistors} transistors)"
            ),
            CoreError::EmptyTrainingSet => write!(f, "training corpus is empty"),
            CoreError::Unsupported(msg) => write!(f, "unsupported cell structure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CoreError::NoMatchingGroup {
            cell: "X".into(),
            inputs: 3,
            transistors: 8,
        };
        assert_eq!(
            err.to_string(),
            "no trained group for `X` (3 inputs, 8 transistors)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
