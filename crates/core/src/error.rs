//! Error type of the CA-matrix and flow layers.

use std::fmt;

/// Errors raised while canonicalizing cells or running generation flows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The defect-free simulation produced a non-binary value, so the cell
    /// cannot be characterized (broken netlist, floating output, ...).
    GoldenNotBinary {
        /// Cell being characterized.
        cell: String,
        /// Stimulus index that failed.
        stimulus: usize,
    },
    /// No trained group matches the cell's (inputs, transistors) key.
    NoMatchingGroup {
        /// Cell that could not be dispatched.
        cell: String,
        /// Number of primary inputs.
        inputs: usize,
        /// Number of transistors.
        transistors: usize,
    },
    /// The training corpus for a group was empty.
    EmptyTrainingSet,
    /// A cell violates a structural assumption (documented per call site).
    Unsupported(String),
    /// The switch-level solver oscillated on the defect-free cell: the
    /// named nets never reached a fixpoint (e.g. an unintended feedback
    /// loop in the netlist).
    SolverDiverged {
        /// Cell being simulated.
        cell: String,
        /// Names of the nets that kept toggling.
        nets: Vec<String>,
    },
    /// A simulation budget ran out before characterization finished.
    BudgetExceeded {
        /// Cell being characterized.
        cell: String,
        /// Which budget axis was exhausted (e.g. "wall clock").
        resource: String,
    },
    /// Preparing the cell (golden simulation + canonicalization) failed
    /// or panicked; the message preserves whatever diagnostic was
    /// available.
    PrepareFailed {
        /// Cell being prepared.
        cell: String,
        /// Underlying diagnostic.
        source: String,
    },
    /// A durable-storage operation (session store, atomic file export)
    /// failed. The I/O error is carried as text so `CoreError` stays
    /// `Clone + Eq`.
    Storage {
        /// Path of the file or store involved.
        path: String,
        /// Underlying I/O diagnostic.
        source: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GoldenNotBinary { cell, stimulus } => write!(
                f,
                "golden simulation of `{cell}` is not binary under stimulus {stimulus}"
            ),
            CoreError::NoMatchingGroup {
                cell,
                inputs,
                transistors,
            } => write!(
                f,
                "no trained group for `{cell}` ({inputs} inputs, {transistors} transistors)"
            ),
            CoreError::EmptyTrainingSet => write!(f, "training corpus is empty"),
            CoreError::Unsupported(msg) => write!(f, "unsupported cell structure: {msg}"),
            CoreError::SolverDiverged { cell, nets } => {
                write!(
                    f,
                    "solver oscillated on `{cell}` (nets: {})",
                    nets.join(", ")
                )
            }
            CoreError::BudgetExceeded { cell, resource } => {
                write!(
                    f,
                    "budget exceeded while characterizing `{cell}`: {resource}"
                )
            }
            CoreError::PrepareFailed { cell, source } => {
                write!(f, "preparing `{cell}` failed: {source}")
            }
            CoreError::Storage { path, source } => {
                write!(f, "storage failure at `{path}`: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CoreError::NoMatchingGroup {
            cell: "X".into(),
            inputs: 3,
            transistors: 8,
        };
        assert_eq!(
            err.to_string(),
            "no trained group for `X` (3 inputs, 8 transistors)"
        );
    }

    #[test]
    fn robustness_display_messages() {
        let err = CoreError::SolverDiverged {
            cell: "OSC".into(),
            nets: vec!["osc".into(), "oscfoot".into()],
        };
        assert_eq!(
            err.to_string(),
            "solver oscillated on `OSC` (nets: osc, oscfoot)"
        );
        let err = CoreError::BudgetExceeded {
            cell: "NAND2".into(),
            resource: "wall clock".into(),
        };
        assert_eq!(
            err.to_string(),
            "budget exceeded while characterizing `NAND2`: wall clock"
        );
        let err = CoreError::PrepareFailed {
            cell: "BAD".into(),
            source: "boom".into(),
        };
        assert_eq!(err.to_string(), "preparing `BAD` failed: boom");
        let err = CoreError::Storage {
            path: "/tmp/session.caj".into(),
            source: "permission denied".into(),
        };
        assert_eq!(
            err.to_string(),
            "storage failure at `/tmp/session.caj`: permission denied"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
