//! Active/passive transistor identification (paper §III.A).
//!
//! One defect-free (golden) simulation of every stimulus yields, per
//! stimulus: the cell's output waveform and each transistor's *activity
//! wave* — active (1), passive (0), switching on (R) or switching off (F).
//! An NMOS is active when its gate sees logic 1, a PMOS when it sees
//! logic 0.
//!
//! The per-transistor **activity value** (§III.C, Table II) is the
//! `2^n`-bit integer collecting the device's activity over all static
//! stimuli, MSB = all-zeros input; it is the technology-independent
//! identity used to order parallel transistors.

use crate::error::CoreError;
use ca_netlist::{Cell, MosKind, TransistorId};
use ca_sim::packed::{PackedSim, PackedStimulus};
use ca_sim::{CellKernel, Injection, Simulator, Stimulus, Value, Wave};
use std::cmp::Ordering;
use std::fmt;

/// A `2^n`-bit activity bit string, MSB first (paper Table II).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActivityValue {
    /// Bits in MSB-first order: `bits[p]` is the activity under the static
    /// stimulus whose input pattern has binary value `p`.
    bits: Vec<bool>,
}

impl ActivityValue {
    /// Builds from MSB-first bits.
    pub fn new(bits: Vec<bool>) -> ActivityValue {
        ActivityValue { bits }
    }

    /// Number of bits (`2^n`).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether there are no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit for static input pattern `p` (MSB = pattern 0).
    pub fn bit(&self, p: usize) -> bool {
        self.bits[p]
    }

    /// The value as `u128`, if it fits (n <= 7 inputs).
    pub fn as_u128(&self) -> Option<u128> {
        if self.bits.len() > 128 {
            return None;
        }
        let mut v = 0u128;
        for &b in &self.bits {
            v = (v << 1) | u128::from(b);
        }
        Some(v)
    }
}

impl PartialOrd for ActivityValue {
    fn partial_cmp(&self, other: &ActivityValue) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ActivityValue {
    fn cmp(&self, other: &ActivityValue) -> Ordering {
        // MSB-first lexicographic comparison = numeric comparison for
        // equal-length strings; shorter strings order first.
        self.bits
            .len()
            .cmp(&other.bits.len())
            .then_with(|| self.bits.cmp(&other.bits))
    }
}

impl fmt::Display for ActivityValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_u128() {
            write!(f, "{v}")
        } else {
            for &b in &self.bits {
                write!(f, "{}", u8::from(b))?;
            }
            Ok(())
        }
    }
}

/// Golden-simulation product: output waves, transistor activity waves and
/// activity values for one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activation {
    stimuli: Vec<Stimulus>,
    output_waves: Vec<Wave>,
    transistor_waves: Vec<Vec<Wave>>,
    activity_values: Vec<ActivityValue>,
}

impl Activation {
    /// Runs the golden simulation of `cell` over the full stimulus set and
    /// extracts all activation information.
    ///
    /// Output waves are recorded for the cell's primary output (the
    /// CA-matrix response column is single-output; multi-output cells are
    /// rejected upstream by `PreparedCell::prepare`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GoldenNotBinary`] when the defect-free cell
    /// does not settle to binary values (invalid netlist).
    pub fn extract(cell: &Cell) -> Result<Activation, CoreError> {
        let stimuli = Stimulus::all(cell.num_inputs());
        Activation::extract_with(cell, stimuli)
    }

    /// Like [`Activation::extract`] with a caller-provided stimulus list
    /// (must start with the `2^n` static stimuli in ascending order for
    /// activity values to be meaningful).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GoldenNotBinary`] when the defect-free cell
    /// does not settle to binary values.
    pub fn extract_with(cell: &Cell, stimuli: Vec<Stimulus>) -> Result<Activation, CoreError> {
        // The packed engine evaluates 64 stimuli per solver pass
        // (DESIGN.md §12) and produces bit-identical waves; the scalar
        // path remains as the fallback and the differential reference.
        let packed = if ca_sim::packed_enabled() {
            Activation::golden_waves_packed(cell, &stimuli)
        } else {
            None
        };
        let (output_waves, transistor_waves) = match packed {
            Some(waves) => waves?,
            None => Activation::golden_waves_scalar(cell, &stimuli)?,
        };
        // Activity values from the leading static stimuli. The paper's
        // Table II orders rows with input A as the MSB of the pattern
        // (00, 01, 10, 11 over A,B); our static stimulus index uses input
        // 0 as the LSB, so each table row is the bit-reversed index.
        let n_transistors = cell.num_transistors();
        let n = cell.num_inputs();
        let n_static = 1usize << n;
        let row_to_stimulus = |r: usize| -> usize {
            (0..n).fold(0usize, |acc, i| acc | (((r >> (n - 1 - i)) & 1) << i))
        };
        let mut activity_values = Vec::with_capacity(n_transistors);
        #[allow(clippy::needless_range_loop)] // t indexes the inner dimension
        for t in 0..n_transistors {
            let bits: Vec<bool> = (0..n_static)
                .map(|r| transistor_waves[row_to_stimulus(r)][t] == Wave::One)
                .collect();
            activity_values.push(ActivityValue::new(bits));
        }
        Ok(Activation {
            stimuli,
            output_waves,
            transistor_waves,
            activity_values,
        })
    }

    /// Scalar golden pass: one simulator run per stimulus, collecting the
    /// output wave and every transistor's activity wave.
    #[allow(clippy::type_complexity)]
    fn golden_waves_scalar(
        cell: &Cell,
        stimuli: &[Stimulus],
    ) -> Result<(Vec<Wave>, Vec<Vec<Wave>>), CoreError> {
        let sim = Simulator::new(cell);
        let n_transistors = cell.num_transistors();
        let mut output_waves = Vec::with_capacity(stimuli.len());
        let mut transistor_waves = Vec::with_capacity(stimuli.len());
        for (si, stimulus) in stimuli.iter().enumerate() {
            let result = sim.run(stimulus);
            let not_binary = |_: ()| CoreError::GoldenNotBinary {
                cell: cell.name().to_string(),
                stimulus: si,
            };
            let out = result.wave(cell.output()).ok_or(()).map_err(not_binary)?;
            output_waves.push(out);
            let mut per_t = Vec::with_capacity(n_transistors);
            for (_, t) in cell.transistor_ids() {
                let gate_wave = result.wave(t.gate()).ok_or(()).map_err(not_binary)?;
                per_t.push(activity_wave(t.kind(), gate_wave));
            }
            transistor_waves.push(per_t);
        }
        Ok((output_waves, transistor_waves))
    }

    /// Packed golden pass: 64 stimuli per solver pass. `None` when the
    /// kernel compiler declines the cell. Non-binary nets raise
    /// [`CoreError::GoldenNotBinary`] for the first offending stimulus,
    /// checking the output first and then the gates in transistor-id
    /// order — the exact error the scalar pass reports.
    #[allow(clippy::type_complexity)]
    fn golden_waves_packed(
        cell: &Cell,
        stimuli: &[Stimulus],
    ) -> Option<Result<(Vec<Wave>, Vec<Vec<Wave>>), CoreError>> {
        let kernel = CellKernel::compile(cell)?;
        let packed = PackedStimulus::pack(cell.num_inputs(), stimuli);
        let sim = PackedSim::new(&kernel, Injection::None, None);
        let out_net = cell.output().index();
        let gates: Vec<(usize, MosKind)> = cell
            .transistor_ids()
            .map(|(_, t)| (t.gate().index(), t.kind()))
            .collect();
        let mut output_waves = Vec::with_capacity(stimuli.len());
        let mut transistor_waves = Vec::with_capacity(stimuli.len());
        let mut si = 0usize;
        for block in packed.blocks() {
            let result = sim.run_block(block);
            for lane in 0..block.occupancy() {
                let wave_of = |net: usize| -> Option<Wave> {
                    let level = |v: Value| match v {
                        Value::Zero => Some(false),
                        Value::One => Some(true),
                        _ => None,
                    };
                    let first = level(result.phase1[net].get(lane))?;
                    let last = level(result.final_values[net].get(lane))?;
                    Some(Wave::from_pair(first, last))
                };
                let not_binary = || CoreError::GoldenNotBinary {
                    cell: cell.name().to_string(),
                    stimulus: si,
                };
                let out = match wave_of(out_net) {
                    Some(w) => w,
                    None => return Some(Err(not_binary())),
                };
                output_waves.push(out);
                let mut per_t = Vec::with_capacity(gates.len());
                for &(gate_net, kind) in &gates {
                    let gate_wave = match wave_of(gate_net) {
                        Some(w) => w,
                        None => return Some(Err(not_binary())),
                    };
                    per_t.push(activity_wave(kind, gate_wave));
                }
                transistor_waves.push(per_t);
                si += 1;
            }
        }
        Some(Ok((output_waves, transistor_waves)))
    }

    /// The stimuli the activation was extracted against.
    pub fn stimuli(&self) -> &[Stimulus] {
        &self.stimuli
    }

    /// Output waveform per stimulus.
    pub fn output_waves(&self) -> &[Wave] {
        &self.output_waves
    }

    /// Activity wave of `transistor` under stimulus `stimulus`.
    pub fn transistor_wave(&self, stimulus: usize, transistor: TransistorId) -> Wave {
        self.transistor_waves[stimulus][transistor.index()]
    }

    /// Activity value of `transistor`.
    pub fn activity_value(&self, transistor: TransistorId) -> &ActivityValue {
        &self.activity_values[transistor.index()]
    }

    /// All activity values, indexed by transistor.
    pub fn activity_values(&self) -> &[ActivityValue] {
        &self.activity_values
    }
}

/// Maps a gate waveform to the device's activity wave: an NMOS is active
/// on gate 1, a PMOS on gate 0.
fn activity_wave(kind: MosKind, gate: Wave) -> Wave {
    match kind {
        MosKind::Nmos => gate,
        MosKind::Pmos => match gate {
            Wave::Zero => Wave::One,
            Wave::One => Wave::Zero,
            Wave::Rise => Wave::Fall,
            Wave::Fall => Wave::Rise,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn table_ii_activity_values() {
        // Paper Table II: Px=12, Py=10, N10=3, N11=5.
        let cell = spice::parse_cell(NAND2).unwrap();
        let act = Activation::extract(&cell).unwrap();
        let value = |name: &str| {
            act.activity_value(cell.find_transistor(name).unwrap())
                .as_u128()
                .unwrap()
        };
        assert_eq!(value("MPX"), 12);
        assert_eq!(value("MPY"), 10);
        assert_eq!(value("MN10"), 3);
        assert_eq!(value("MN11"), 5);
    }

    #[test]
    fn output_waves_match_function() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let act = Activation::extract(&cell).unwrap();
        // Static stimuli come first: NAND truth table 1,1,1,0.
        let statics: Vec<Wave> = act.output_waves()[..4].to_vec();
        assert_eq!(statics, vec![Wave::One, Wave::One, Wave::One, Wave::Zero]);
        // Dynamic: 00 -> 11 gives a falling output.
        let idx = act
            .stimuli()
            .iter()
            .position(|s| s.initial_pattern() == 0 && s.final_pattern() == 3)
            .unwrap();
        assert_eq!(act.output_waves()[idx], Wave::Fall);
    }

    #[test]
    fn transistor_waves_respect_polarity() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let act = Activation::extract(&cell).unwrap();
        let mpx = cell.find_transistor("MPX").unwrap();
        let mn10 = cell.find_transistor("MN10").unwrap();
        // Stimulus 0 is AB=00: PMOS active, NMOS passive.
        assert_eq!(act.transistor_wave(0, mpx), Wave::One);
        assert_eq!(act.transistor_wave(0, mn10), Wave::Zero);
        // A rising A makes the NMOS switch on, the PMOS switch off.
        let idx = act
            .stimuli()
            .iter()
            .position(|s| s.initial_pattern() == 0 && s.final_pattern() == 1)
            .unwrap();
        assert_eq!(act.transistor_wave(idx, mn10), Wave::Rise);
        assert_eq!(act.transistor_wave(idx, mpx), Wave::Fall);
    }

    #[test]
    fn activity_value_ordering_is_numeric() {
        let a = ActivityValue::new(vec![true, true, false, false]); // 12
        let b = ActivityValue::new(vec![true, false, true, false]); // 10
        assert!(a > b);
        assert_eq!(a.to_string(), "12");
        assert_eq!(a.as_u128(), Some(12));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn broken_cell_reports_error() {
        // Pull-down only: the output floats when A=0.
        let src = ".SUBCKT BAD A Z VDD VSS\nMN0 Z A VSS VSS nch\n.ENDS";
        let cell = spice::parse_cell(src).unwrap();
        let err = Activation::extract(&cell).unwrap_err();
        assert!(matches!(err, CoreError::GoldenNotBinary { .. }));
    }
}
