//! Structure-keyed characterization cache (the paper's Fig. 6 reuse,
//! executed literally).
//!
//! Drive-strength, skew and threshold-flavor variants of a cell differ
//! only in device sizing — and the topological solver never reads sizes,
//! so their detection tables are *bit-identical up to the transistor
//! permutation*. [`CharCache`] exploits this: before simulating a cell it
//! keys on the full canonical triple `(structure_hash, wiring_hash,
//! reduced_hash)`; on a hit it remaps the cached defect table onto the
//! new cell's transistor ordering instead of re-running the solver.
//!
//! # Soundness
//!
//! Hashes alone can collide, so a hit is never trusted blindly. The
//! cached donor cell and the candidate are put through an explicit
//! **graph-isomorphism certification**: devices are paired by canonical
//! position, and a consistent net bijection (rails ↔ rails, pins ↔ pins
//! by index, internal nets by propagation) is constructed, allowing a
//! per-device drain/source orientation flip (SPICE channel symmetry).
//! Only a certified isomorphism yields a remap; anything else — a true
//! hash collision, an exotic topology the search cannot certify — falls
//! back to plain simulation. Wrong models are therefore impossible, the
//! only failure mode is a wasted lookup.
//!
//! The key refuses [`CanonicalCell::is_netlist_ordered`] views: their
//! hashes are order-sensitive ablation artifacts, not structure classes.
//!
//! # Concurrency
//!
//! The cache is shared across executor workers. Per-key slots use
//! leader election (first claimant simulates, followers block on a
//! condvar): no duplicate simulation work, and the hit/miss *counts* are
//! deterministic regardless of thread count or scheduling.

// Shared by long-running batch drivers; a stray unwrap here can abort a
// whole characterization run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::canonical::CanonicalCell;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use ca_defects::{BitRow, CaModel, DefectClass, DefectId, DefectUniverse, GenerateOptions};
use ca_netlist::{Cell, NetId, Terminal, TransistorId};
use ca_sim::{DetectionPolicy, Injection, SimBudget};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Node budget of the isomorphism search: orientation backtracking is
/// almost always resolved by propagation, so hitting this bound means an
/// adversarial topology — fall back to simulation rather than spin.
const ISO_SEARCH_BUDGET: usize = 10_000;

/// Cache key: the full canonical triple plus the generation options
/// (models generated under different options are never interchangeable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct CacheKey {
    structure: u64,
    wiring: u64,
    reduced: u64,
    policy: DetectionPolicy,
    inter_transistor: bool,
}

impl CacheKey {
    /// The key of `canonical` under `options`; `None` for netlist-order
    /// fallback canonicals, which must not participate in reuse.
    fn for_canonical(canonical: &CanonicalCell, options: GenerateOptions) -> Option<CacheKey> {
        if canonical.is_netlist_ordered() {
            return None;
        }
        Some(CacheKey {
            structure: canonical.structure_hash(),
            wiring: canonical.wiring_hash(),
            reduced: canonical.reduced_hash(),
            policy: options.policy,
            inter_transistor: options.inter_transistor,
        })
    }
}

/// The donor side of a cache entry: everything needed to certify a new
/// cell against it and remap its model.
struct Donor {
    cell: Cell,
    canonical: CanonicalCell,
    model: CaModel,
}

enum SlotState {
    /// A leader is characterizing; followers wait on the condvar.
    Pending,
    /// Characterization finished; `None` means the leader failed and
    /// followers must simulate themselves.
    Ready(Option<Arc<Donor>>),
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, donor: Option<Arc<Donor>>) {
        *lock_recover(&self.state) = SlotState::Ready(donor);
        self.ready.notify_all();
    }

    fn wait(&self) -> Option<Arc<Donor>> {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                SlotState::Ready(donor) => return donor.clone(),
                SlotState::Pending => {
                    state = match self.ready.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }
}

/// Locks a mutex, recovering from poison: slot state transitions are
/// single-assignment, so a poisoned guard still holds consistent data.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Publishes `Ready(None)` if the leader unwinds before publishing a
/// donor, so followers never deadlock on a panicking leader.
struct LeaderGuard<'a> {
    slot: &'a Slot,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.slot.publish(None);
        }
    }
}

/// Counters of one cache's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served by remapping a cached model.
    pub hits: usize,
    /// Lookups that had to simulate (includes every leader).
    pub misses: usize,
    /// Key matches whose isomorphism certification failed (hash
    /// collisions or uncertifiable topologies); these also count as
    /// misses.
    pub rejected: usize,
    /// Lookups that bypassed the cache entirely (netlist-order
    /// canonicals, truncating budgets).
    pub bypassed: usize,
}

impl CacheStats {
    /// Every lookup that entered the cache API: `hits + misses +
    /// bypassed`. (`rejected` lookups are already inside `misses`, so
    /// they are not added again.) Profile rates computed over this
    /// denominator sum to 100%.
    pub fn lookup_total(&self) -> usize {
        self.hits + self.misses + self.bypassed
    }

    /// Hits over *all* lookups — bypassed included — in `[0, 1]`. A
    /// bypass is a lookup the cache declined to serve, so counting it
    /// in the denominator keeps this rate and
    /// [`CacheStats::bypass_rate`] summing with the miss share to 1.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookup_total();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bypassed lookups over all lookups, in `[0, 1]`.
    pub fn bypass_rate(&self) -> f64 {
        let total = self.lookup_total();
        if total == 0 {
            0.0
        } else {
            self.bypassed as f64 / total as f64
        }
    }
}

/// A structure-keyed characterization cache; see the module docs.
///
/// Shared by reference across executor workers; create one per logical
/// batch (or hold one for a whole session — entries never expire).
#[derive(Default)]
pub struct CharCache {
    slots: Mutex<BTreeMap<CacheKey, Arc<Slot>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    rejected: AtomicUsize,
    bypassed: AtomicUsize,
}

impl std::fmt::Debug for CharCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CharCache")
            .field("entries", &lock_recover(&self.slots).len())
            .field("stats", &stats)
            .finish()
    }
}

enum Claim {
    Leader(Arc<Slot>),
    Follower(Arc<Slot>),
}

impl CharCache {
    /// An empty cache.
    pub fn new() -> CharCache {
        CharCache::default()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bypassed: self.bypassed.load(Ordering::Relaxed),
        }
    }

    // Each bump lands in both this cache's own stats and the global
    // metric registry — the registry aggregates across every cache in
    // the process, `stats()` stays per-batch. Leader election makes
    // all four counts scheduling-invariant, hence `work`-class.
    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        ca_obs::counter!("ca_core.cache.hits", Work).inc();
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        ca_obs::counter!("ca_core.cache.misses", Work).inc();
    }

    fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        ca_obs::counter!("ca_core.cache.rejected", Work).inc();
    }

    fn note_bypassed(&self) {
        self.bypassed.fetch_add(1, Ordering::Relaxed);
        ca_obs::counter!("ca_core.cache.bypassed", Work).inc();
    }

    /// Drop-in replacement for [`PreparedCell::characterize`] that serves
    /// structurally identical cells from the cache.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PreparedCell::characterize`].
    pub fn characterize(
        &self,
        cell: Cell,
        options: GenerateOptions,
    ) -> Result<PreparedCell, CoreError> {
        let mut prepared = PreparedCell::prepare(cell)?;
        let Some(key) = CacheKey::for_canonical(&prepared.canonical, options) else {
            self.note_bypassed();
            prepared.model = Some(CaModel::generate(&prepared.cell, options));
            return Ok(prepared);
        };
        match self.claim(key) {
            Claim::Leader(slot) => {
                let mut guard = LeaderGuard {
                    slot: &slot,
                    armed: true,
                };
                let model = CaModel::generate(&prepared.cell, options);
                if !model.degraded {
                    guard.armed = false;
                    slot.publish(Some(Arc::new(Donor {
                        cell: prepared.cell.clone(),
                        canonical: prepared.canonical.clone(),
                        model: model.clone(),
                    })));
                }
                self.note_miss();
                prepared.model = Some(model);
                Ok(prepared)
            }
            Claim::Follower(slot) => {
                if let Some(donor) = slot.wait() {
                    if let Some(model) = remap_model(&donor, &prepared, options) {
                        self.note_hit();
                        prepared.model = Some(model);
                        return Ok(prepared);
                    }
                    self.note_rejected();
                }
                self.note_miss();
                prepared.model = Some(CaModel::generate(&prepared.cell, options));
                Ok(prepared)
            }
        }
    }

    /// Budget-aware variant used by the robust driver. The cache only
    /// participates when the budget cannot change the *result* of a
    /// successful run — i.e. no stimulus/defect truncation and no solver
    /// iteration cap. A pure wall-clock deadline is fine: a hit does
    /// strictly less work than the simulation the deadline bounds.
    ///
    /// # Errors
    ///
    /// Exactly those of [`PreparedCell::characterize_budgeted`].
    pub fn characterize_budgeted(
        &self,
        cell: Cell,
        options: GenerateOptions,
        budget: &SimBudget,
    ) -> Result<PreparedCell, CoreError> {
        if budget.max_stimuli.is_some()
            || budget.max_defects.is_some()
            || budget.max_solver_iterations.is_some()
        {
            self.note_bypassed();
            return PreparedCell::characterize_budgeted(cell, options, budget);
        }
        let prepared = match PreparedCell::prepare(cell.clone()) {
            Ok(p) => p,
            // Preserve the budgeted path's error precedence (it generates
            // before preparing): re-run it cold so e.g. a wall-clock
            // expiry surfaces ahead of a multi-output rejection.
            Err(_) => return PreparedCell::characterize_budgeted(cell, options, budget),
        };
        let Some(key) = CacheKey::for_canonical(&prepared.canonical, options) else {
            self.note_bypassed();
            return PreparedCell::characterize_budgeted(cell, options, budget);
        };
        let mut prepared = prepared;
        match self.claim(key) {
            Claim::Leader(slot) => {
                let mut guard = LeaderGuard {
                    slot: &slot,
                    armed: true,
                };
                let result = PreparedCell::characterize_budgeted(cell, options, budget);
                if let Ok(p) = &result {
                    if let Some(model) = p.model.as_ref().filter(|m| !m.degraded) {
                        guard.armed = false;
                        slot.publish(Some(Arc::new(Donor {
                            cell: p.cell.clone(),
                            canonical: p.canonical.clone(),
                            model: model.clone(),
                        })));
                    }
                }
                self.note_miss();
                result
            }
            Claim::Follower(slot) => {
                if let Some(donor) = slot.wait() {
                    if let Some(model) = remap_model(&donor, &prepared, options) {
                        self.note_hit();
                        prepared.universe = model.universe.clone();
                        prepared.model = Some(model);
                        return Ok(prepared);
                    }
                    self.note_rejected();
                }
                self.note_miss();
                PreparedCell::characterize_budgeted(cell, options, budget)
            }
        }
    }

    fn claim(&self, key: CacheKey) -> Claim {
        let mut slots = lock_recover(&self.slots);
        match slots.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => Claim::Follower(Arc::clone(e.get())),
            std::collections::btree_map::Entry::Vacant(v) => {
                let slot = Arc::new(Slot::new());
                v.insert(Arc::clone(&slot));
                Claim::Leader(slot)
            }
        }
    }

    /// Plants a pre-characterized donor under its own canonical key —
    /// the session layer uses this to pre-seed the cache with models
    /// reloaded from the on-disk store, so on-disk hits flow through the
    /// same isomorphism-certified remap path as in-memory hits.
    ///
    /// Returns `false` (and plants nothing) for donors the cache would
    /// never serve: degraded models (the never-a-donor rule — an
    /// incomplete table must not propagate to structure siblings),
    /// netlist-ordered canonicals, and keys that already hold a donor.
    /// `canonical` must be the canonical view of `cell`; a lying caller
    /// is caught by certification at lookup time, not here.
    pub fn seed_donor(
        &self,
        cell: Cell,
        canonical: CanonicalCell,
        model: CaModel,
        options: GenerateOptions,
    ) -> bool {
        if model.degraded {
            return false;
        }
        let Some(key) = CacheKey::for_canonical(&canonical, options) else {
            return false;
        };
        let mut slots = lock_recover(&self.slots);
        match slots.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                let slot = Arc::new(Slot::new());
                slot.publish(Some(Arc::new(Donor {
                    cell,
                    canonical,
                    model,
                })));
                v.insert(slot);
                true
            }
        }
    }

    /// TEST SUPPORT: plants `donor` under the key of `victim_canonical`,
    /// simulating a 64-bit hash collision between two different
    /// structures. Only the certification layer stands between this and
    /// a wrong model.
    #[cfg(test)]
    pub(crate) fn plant_collision(
        &self,
        victim_canonical: &CanonicalCell,
        options: GenerateOptions,
        donor: &PreparedCell,
    ) {
        let key = CacheKey::for_canonical(victim_canonical, options).expect("plantable key");
        let slot = Arc::new(Slot::new());
        slot.publish(Some(Arc::new(Donor {
            cell: donor.cell.clone(),
            canonical: donor.canonical.clone(),
            model: donor.model.clone().expect("donor must be characterized"),
        })));
        lock_recover(&self.slots).insert(key, slot);
    }
}

// ---------------------------------------------------------------------
// Isomorphism certification
// ---------------------------------------------------------------------

/// A certified donor → candidate isomorphism.
struct IsoCert {
    /// Candidate net → donor net (dense, by net index).
    c2d: Vec<Option<u32>>,
    /// Per canonical position: candidate device's drain/source are
    /// swapped relative to the donor device.
    swapped: Vec<bool>,
}

#[derive(Clone)]
struct MapState {
    d2c: Vec<Option<u32>>,
    c2d: Vec<Option<u32>>,
    swapped: Vec<bool>,
}

impl MapState {
    /// Records `dn ↔ cn`, failing on any inconsistency (kind mismatch,
    /// non-injective mapping).
    fn unify(&mut self, donor: &Cell, cand: &Cell, dn: NetId, cn: NetId) -> bool {
        if donor.nets()[dn.index()].kind() != cand.nets()[cn.index()].kind() {
            return false;
        }
        match (self.d2c[dn.index()], self.c2d[cn.index()]) {
            (None, None) => {
                self.d2c[dn.index()] = Some(cn.0);
                self.c2d[cn.index()] = Some(dn.0);
                true
            }
            (Some(x), Some(y)) => x == cn.0 && y == dn.0,
            _ => false,
        }
    }
}

/// Builds a net bijection consistent with the canonical device pairing,
/// or `None` when the two cells are *not* isomorphic (the hash-collision
/// safety net) or the search exceeds its budget.
fn certify_isomorphism(
    donor: &Cell,
    donor_canon: &CanonicalCell,
    cand: &Cell,
    cand_canon: &CanonicalCell,
) -> Option<IsoCert> {
    ca_obs::counter!("ca_core.iso.attempts", Work).inc();
    if donor.num_transistors() != cand.num_transistors()
        || donor.num_inputs() != cand.num_inputs()
        || donor.outputs().len() != cand.outputs().len()
    {
        return None;
    }
    let mut state = MapState {
        d2c: vec![None; donor.nets().len()],
        c2d: vec![None; cand.nets().len()],
        swapped: vec![false; donor.num_transistors()],
    };
    // Seed: rails, pins (by index) and outputs are structural anchors.
    let seeds = std::iter::once((donor.power(), cand.power()))
        .chain(std::iter::once((donor.ground(), cand.ground())))
        .chain(
            donor
                .inputs()
                .iter()
                .copied()
                .zip(cand.inputs().iter().copied()),
        )
        .chain(
            donor
                .outputs()
                .iter()
                .copied()
                .zip(cand.outputs().iter().copied()),
        );
    for (dn, cn) in seeds {
        if !state.unify(donor, cand, dn, cn) {
            return None;
        }
    }
    // Pair devices by canonical position; kinds must agree up front.
    let pairs: Vec<(TransistorId, TransistorId)> = donor_canon
        .order()
        .iter()
        .copied()
        .zip(cand_canon.order().iter().copied())
        .collect();
    for &(td, tc) in &pairs {
        if donor.transistor(td).kind() != cand.transistor(tc).kind() {
            return None;
        }
    }
    let mut budget = ISO_SEARCH_BUDGET;
    if !solve(&pairs, 0, &mut state, donor, cand, &mut budget) {
        if budget == 0 {
            ca_obs::counter!("ca_core.iso.budget_exhausted", Work).inc();
        }
        return None;
    }
    ca_obs::counter!("ca_core.iso.certified", Work).inc();
    Some(IsoCert {
        c2d: state.c2d,
        swapped: state.swapped,
    })
}

/// Depth-first assignment of per-device drain/source orientation with
/// constraint propagation through the shared net mapping.
fn solve(
    pairs: &[(TransistorId, TransistorId)],
    k: usize,
    state: &mut MapState,
    donor: &Cell,
    cand: &Cell,
    budget: &mut usize,
) -> bool {
    if k == pairs.len() {
        return true;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let (td, tc) = pairs[k];
    let (dt, ct) = (donor.transistor(td), cand.transistor(tc));
    for swap in [false, true] {
        let (c_drain, c_source) = if swap {
            (ct.source(), ct.drain())
        } else {
            (ct.drain(), ct.source())
        };
        let mut trial = state.clone();
        if trial.unify(donor, cand, dt.gate(), ct.gate())
            && trial.unify(donor, cand, dt.drain(), c_drain)
            && trial.unify(donor, cand, dt.source(), c_source)
        {
            trial.swapped[k] = swap;
            if solve(pairs, k + 1, &mut trial, donor, cand, budget) {
                *state = trial;
                return true;
            }
        }
        // A device with both channel ends on one net is orientation-
        // symmetric; trying the flip would duplicate the branch.
        if ct.drain() == ct.source() {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Defect-table remapping
// ---------------------------------------------------------------------

fn flip_terminal(term: Terminal, swapped: bool) -> Terminal {
    if !swapped {
        return term;
    }
    match term {
        Terminal::Drain => Terminal::Source,
        Terminal::Source => Terminal::Drain,
        other => other,
    }
}

/// Certifies `prepared` against the donor and, on success, rebuilds the
/// donor's model on the candidate's own transistor ordering. Returns the
/// model the conventional flow would have produced, bit for bit.
fn remap_model(
    donor: &Donor,
    prepared: &PreparedCell,
    options: GenerateOptions,
) -> Option<CaModel> {
    let cert = certify_isomorphism(
        &donor.cell,
        &donor.canonical,
        &prepared.cell,
        &prepared.canonical,
    )?;
    let cand_universe = if options.inter_transistor {
        DefectUniverse::with_inter_transistor(&prepared.cell)
    } else {
        DefectUniverse::intra_transistor(&prepared.cell)
    };
    if donor.model.universe.len() != cand_universe.len() || donor.model.degraded {
        return None;
    }
    let donor_index: BTreeMap<Injection, usize> = donor
        .model
        .universe
        .defects()
        .iter()
        .map(|d| (d.injection, d.id.index()))
        .collect();
    // Candidate defect -> donor defect, through the device pairing (with
    // per-device drain/source flips) and the net bijection.
    let mut cand_to_donor = Vec::with_capacity(cand_universe.len());
    for defect in cand_universe.defects() {
        let donor_injection = match defect.injection {
            Injection::Open {
                transistor,
                terminal,
            } => {
                let k = prepared.canonical.position(transistor);
                Injection::Open {
                    transistor: *donor.canonical.order().get(k)?,
                    terminal: flip_terminal(terminal, cert.swapped[k]),
                }
            }
            Injection::Short { transistor, a, b } => {
                let k = prepared.canonical.position(transistor);
                let td = *donor.canonical.order().get(k)?;
                let (a2, b2) = (
                    flip_terminal(a, cert.swapped[k]),
                    flip_terminal(b, cert.swapped[k]),
                );
                // The universe enumerates unordered pairs in a fixed
                // order; a flip may reverse ours, so try both.
                let forward = Injection::Short {
                    transistor: td,
                    a: a2,
                    b: b2,
                };
                if donor_index.contains_key(&forward) {
                    forward
                } else {
                    Injection::Short {
                        transistor: td,
                        a: b2,
                        b: a2,
                    }
                }
            }
            Injection::NetShort { a, b } => {
                let a2 = NetId(cert.c2d.get(a.index()).copied().flatten()?);
                let b2 = NetId(cert.c2d.get(b.index()).copied().flatten()?);
                let forward = Injection::NetShort { a: a2, b: b2 };
                if donor_index.contains_key(&forward) {
                    forward
                } else {
                    Injection::NetShort { a: b2, b: a2 }
                }
            }
            Injection::None => return None,
        };
        cand_to_donor.push(*donor_index.get(&donor_injection)?);
    }
    // The defect mapping must be a bijection — anything else means the
    // certification missed something, so refuse the hit.
    let mut seen = vec![false; donor.model.rows.len()];
    for &d in &cand_to_donor {
        if *seen.get(d)? {
            return None;
        }
        seen[d] = true;
    }
    let rows: Vec<BitRow> = cand_to_donor
        .iter()
        .map(|&d| donor.model.rows[d].clone())
        .collect();
    // Classes transport through the same bijection: grouping by row
    // equality is isomorphism-invariant, so remapping the members (and
    // restoring the by-representative order) reproduces exactly what
    // `equivalence_classes` would compute on the remapped table.
    let mut donor_to_cand = vec![0usize; cand_to_donor.len()];
    for (c, &d) in cand_to_donor.iter().enumerate() {
        donor_to_cand[d] = c;
    }
    let mut classes: Vec<DefectClass> = donor
        .model
        .classes
        .iter()
        .map(|class| {
            let mut members: Vec<DefectId> = class
                .members
                .iter()
                .map(|m| DefectId(donor_to_cand[m.index()] as u32))
                .collect();
            members.sort_unstable();
            DefectClass {
                representative: members[0],
                members,
                behavior: class.behavior,
                row: class.row.clone(),
            }
        })
        .collect();
    classes.sort_by_key(|c| c.representative);
    Some(CaModel {
        cell_name: prepared.cell.name().to_string(),
        num_inputs: prepared.cell.num_inputs(),
        num_transistors: prepared.cell.num_transistors(),
        universe: cand_universe,
        rows,
        classes,
        // An isomorphic donor ran exactly the simulations this cell
        // would have run; carrying the count keeps cached models
        // bit-identical to cold ones.
        defect_simulations: donor.model.defect_simulations,
        degraded: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

    /// Same NAND2, devices reordered/renamed, one drain/source swapped.
    const NAND2_SHUFFLED: &str = "\
.SUBCKT NAND2V A B Z VDD VSS
M3 net9 B VSS VSS nch
M1 Z B VDD VDD pch
M0 Z A VDD VDD pch
M2 Z A net9 VSS nch
.ENDS
";

    const NOR2: &str = "\
.SUBCKT NOR2 A B Z VDD VSS
MP0 Z A mid VDD pch
MP1 mid B VDD VDD pch
MN0 Z A VSS VSS nch
MN1 Z B VSS VSS nch
.ENDS
";

    #[test]
    fn permuted_cell_hits_and_matches_cold_characterization() {
        let cache = CharCache::new();
        let opts = GenerateOptions::default();
        let a = cache
            .characterize(spice::parse_cell(NAND2).unwrap(), opts)
            .unwrap();
        let b = cache
            .characterize(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1, "{stats:?}");
        // The remapped model is bit-identical to a cold run.
        let cold =
            PreparedCell::characterize(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts).unwrap();
        assert_eq!(b.model, cold.model);
        assert_eq!(
            a.model.as_ref().unwrap().defect_simulations,
            b.model.as_ref().unwrap().defect_simulations
        );
    }

    #[test]
    fn planted_hash_collision_falls_back_to_simulation() {
        let cache = CharCache::new();
        let opts = GenerateOptions::default();
        let donor = PreparedCell::characterize(spice::parse_cell(NAND2).unwrap(), opts).unwrap();
        let victim = PreparedCell::prepare(spice::parse_cell(NOR2).unwrap()).unwrap();
        // Forge a collision: the NAND2 donor sits under the NOR2 key.
        cache.plant_collision(&victim.canonical, opts, &donor);
        let out = cache
            .characterize(spice::parse_cell(NOR2).unwrap(), opts)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.rejected, 1, "{stats:?}");
        assert_eq!(stats.hits, 0);
        let cold = PreparedCell::characterize(spice::parse_cell(NOR2).unwrap(), opts).unwrap();
        assert_eq!(out.model, cold.model, "fallback must simulate, not remap");
    }

    #[test]
    fn different_options_use_different_keys() {
        let cache = CharCache::new();
        let a = cache
            .characterize(
                spice::parse_cell(NAND2).unwrap(),
                GenerateOptions::default(),
            )
            .unwrap();
        let b = cache
            .characterize(
                spice::parse_cell(NAND2).unwrap(),
                GenerateOptions {
                    inter_transistor: true,
                    ..GenerateOptions::default()
                },
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 0, "{:?}", cache.stats());
        assert_eq!(cache.stats().misses, 2);
        assert!(
            b.model.as_ref().unwrap().universe.len() > a.model.as_ref().unwrap().universe.len()
        );
    }

    #[test]
    fn inter_transistor_shorts_remap_through_the_net_bijection() {
        let cache = CharCache::new();
        let opts = GenerateOptions {
            inter_transistor: true,
            ..GenerateOptions::default()
        };
        cache
            .characterize(spice::parse_cell(NAND2).unwrap(), opts)
            .unwrap();
        let remapped = cache
            .characterize(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts)
            .unwrap();
        assert_eq!(cache.stats().hits, 1, "{:?}", cache.stats());
        let cold =
            PreparedCell::characterize(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts).unwrap();
        assert_eq!(remapped.model, cold.model);
    }

    #[test]
    fn truncating_budgets_bypass_the_cache() {
        let cache = CharCache::new();
        let opts = GenerateOptions::default();
        let budget = SimBudget {
            max_defects: Some(4),
            ..SimBudget::unlimited()
        };
        let p = cache
            .characterize_budgeted(spice::parse_cell(NAND2).unwrap(), opts, &budget)
            .unwrap();
        assert!(p.model.as_ref().unwrap().degraded);
        let stats = cache.stats();
        assert_eq!(stats.bypassed, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn wall_clock_only_budget_participates() {
        let cache = CharCache::new();
        let opts = GenerateOptions::default();
        let budget = SimBudget::unlimited();
        cache
            .characterize_budgeted(spice::parse_cell(NAND2).unwrap(), opts, &budget)
            .unwrap();
        let hit = cache
            .characterize_budgeted(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts, &budget)
            .unwrap();
        assert_eq!(cache.stats().hits, 1, "{:?}", cache.stats());
        let cold =
            PreparedCell::characterize(spice::parse_cell(NAND2_SHUFFLED).unwrap(), opts).unwrap();
        assert_eq!(hit.model, cold.model);
        assert_eq!(hit.universe, cold.universe);
    }

    #[test]
    fn certification_rejects_non_isomorphic_same_shape_cells() {
        // NAND2 vs NOR2: same device count and polarity split, different
        // wiring — certification must fail on the net mapping.
        let nand = spice::parse_cell(NAND2).unwrap();
        let nor = spice::parse_cell(NOR2).unwrap();
        let pa = PreparedCell::prepare(nand.clone()).unwrap();
        let pb = PreparedCell::prepare(nor.clone()).unwrap();
        assert!(certify_isomorphism(&nand, &pa.canonical, &nor, &pb.canonical).is_none());
    }

    #[test]
    fn certification_finds_drain_source_swaps() {
        let a = spice::parse_cell(NAND2).unwrap();
        let b = spice::parse_cell(NAND2_SHUFFLED).unwrap();
        let pa = PreparedCell::prepare(a.clone()).unwrap();
        let pb = PreparedCell::prepare(b.clone()).unwrap();
        let cert = certify_isomorphism(&a, &pa.canonical, &b, &pb.canonical).unwrap();
        // Every candidate net is mapped (this cell has no bulk-only nets).
        for (i, m) in cert.c2d.iter().enumerate() {
            assert!(m.is_some(), "net {i} unmapped");
        }
    }

    #[test]
    fn concurrent_lookups_elect_one_leader_per_key() {
        let cache = CharCache::new();
        let opts = GenerateOptions::default();
        let cells: Vec<Cell> = (0..8)
            .map(|i| {
                let src = if i % 2 == 0 { NAND2 } else { NAND2_SHUFFLED };
                spice::parse_cell(src).unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .iter()
                .map(|cell| {
                    let cache = &cache;
                    scope.spawn(move || cache.characterize(cell.clone(), opts).unwrap())
                })
                .collect();
            let results: Vec<PreparedCell> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results {
                // Whoever won leadership, every result matches its own
                // cold characterization bit for bit.
                let cold = PreparedCell::characterize(r.cell.clone(), opts).unwrap();
                assert_eq!(r.model, cold.model, "{}", r.cell.name());
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 7);
    }
}
