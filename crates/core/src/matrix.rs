//! CA-matrix assembly and ML feature encoding (paper Table I, §III/IV).
//!
//! One CA-matrix row is one ⟨stimulus, defect⟩ pair:
//!
//! | columns | content |
//! |---|---|
//! | `n` | input waves, `{0,1,R,F}` coded `0..=3` |
//! | `1` | golden output wave |
//! | `T` | per canonical transistor: activity wave code |
//! | `3T` | per canonical transistor: defect flags on D, G, S |
//! | `1` | defect kind: 0 = free, 1 = open, 2 = short |
//!
//! The label (not part of the features) is the detection bit. Defect-free
//! "free" rows (Table I) carry all-zero flags and label 0. Because all
//! per-transistor columns are indexed by *canonical* position, rows from
//! different cells of the same (inputs, transistors) group align.

use crate::activation::Activation;
use crate::canonical::CanonicalCell;
use crate::error::CoreError;
use ca_defects::{BitRow, CaModel, DefectKind, DefectUniverse, GenerateOptions};
use ca_ml::Dataset;
use ca_netlist::{Cell, Terminal};
use ca_sim::{Injection, SimBudget, SimError};

/// Fixed column layout of a cell group's CA-matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixLayout {
    /// Number of primary inputs of the group.
    pub num_inputs: usize,
    /// Number of transistors of the group.
    pub num_transistors: usize,
}

impl MatrixLayout {
    /// Total number of feature columns.
    pub fn num_features(self) -> usize {
        self.num_inputs + 1 + self.num_transistors + 3 * self.num_transistors + 1
    }

    /// Column index of input pin `i`'s wave.
    pub fn input_col(self, i: usize) -> usize {
        i
    }

    /// Column index of the golden output wave.
    pub fn output_col(self) -> usize {
        self.num_inputs
    }

    /// Column index of canonical transistor `k`'s activity wave.
    pub fn activity_col(self, k: usize) -> usize {
        self.num_inputs + 1 + k
    }

    /// Column index of the defect flag for canonical transistor `k`,
    /// terminal `term`.
    pub fn defect_col(self, k: usize, term: Terminal) -> usize {
        let offset = match term {
            Terminal::Drain => 0,
            Terminal::Gate => 1,
            Terminal::Source => 2,
            Terminal::Bulk => panic!("bulk terminals are not part of the CA-matrix"),
        };
        self.num_inputs + 1 + self.num_transistors + 3 * k + offset
    }

    /// Column index of the defect-kind code.
    pub fn kind_col(self) -> usize {
        self.num_features() - 1
    }

    /// Human-readable column names (`A`, ..., `Z`, `N0`, ..., `N0_D`, ...).
    pub fn column_names(self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.num_features());
        for i in 0..self.num_inputs {
            names.push(((b'A' + i as u8) as char).to_string());
        }
        names.push("Z".into());
        for k in 0..self.num_transistors {
            names.push(format!("T{k}"));
        }
        for k in 0..self.num_transistors {
            for term in [Terminal::Drain, Terminal::Gate, Terminal::Source] {
                names.push(format!("T{k}_{term}"));
            }
        }
        names.push("kind".into());
        names
    }
}

/// A cell with everything the ML flow needs: activation, canonical view,
/// defect universe and (for training cells) the ground-truth CA model.
#[derive(Debug, Clone)]
pub struct PreparedCell {
    /// The transistor netlist.
    pub cell: Cell,
    /// Golden activation information.
    pub activation: Activation,
    /// Canonical (renamed) view.
    pub canonical: CanonicalCell,
    /// Defect universe (intra-transistor).
    pub universe: DefectUniverse,
    /// Ground-truth CA model, present for training cells.
    pub model: Option<CaModel>,
}

impl PreparedCell {
    /// Prepares a *training* cell: runs the conventional flow to obtain
    /// ground-truth labels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GoldenNotBinary`] for invalid netlists.
    pub fn characterize(cell: Cell, options: GenerateOptions) -> Result<PreparedCell, CoreError> {
        let mut prepared = PreparedCell::prepare(cell)?;
        prepared.model = Some(CaModel::generate(&prepared.cell, options));
        Ok(prepared)
    }

    /// Like [`PreparedCell::characterize`], but runs the conventional
    /// flow under a [`SimBudget`]: oscillation and exhausted budgets
    /// become errors instead of silently X-forced values.
    ///
    /// Truncating budgets (`max_stimuli` / `max_defects`) produce a
    /// [degraded](CaModel::degraded) model; the prepared cell's universe
    /// is aligned with the (possibly truncated) model universe. Degraded
    /// cells must not be used as ML training cells — their detection
    /// rows cover fewer stimuli than the activation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SolverDiverged`] when the golden cell
    /// oscillates, [`CoreError::BudgetExceeded`] when the wall clock or
    /// iteration budget runs out, and the usual prepare errors.
    pub fn characterize_budgeted(
        cell: Cell,
        options: GenerateOptions,
        budget: &SimBudget,
    ) -> Result<PreparedCell, CoreError> {
        let name = cell.name().to_string();
        let model = CaModel::generate_budgeted(&cell, options, budget).map_err(|e| match e {
            SimError::Oscillated { nets } => CoreError::SolverDiverged {
                cell: name.clone(),
                nets,
            },
            SimError::BudgetExceeded { resource } => CoreError::BudgetExceeded {
                cell: name.clone(),
                resource: resource.to_string(),
            },
        })?;
        let mut prepared = PreparedCell::prepare(cell)?;
        prepared.universe = model.universe.clone();
        prepared.model = Some(model);
        Ok(prepared)
    }

    /// Prepares a *new* cell for inference (no labels). Only the
    /// defect-free golden simulation is run — this is the cheap part the
    /// ML flow keeps from Fig. 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GoldenNotBinary`] for invalid netlists.
    pub fn prepare(cell: Cell) -> Result<PreparedCell, CoreError> {
        if cell.outputs().len() != 1 {
            // The paper's CA-matrix has a single response column; the
            // conventional flow (CaModel::generate) handles multi-output
            // cells, the ML encoding does not.
            return Err(CoreError::Unsupported(format!(
                "cell `{}` has {} outputs; the CA-matrix encoding is single-output",
                cell.name(),
                cell.outputs().len()
            )));
        }
        let activation = Activation::extract(&cell)?;
        let canonical = CanonicalCell::build(&cell, &activation)?;
        let universe = DefectUniverse::intra_transistor(&cell);
        Ok(PreparedCell {
            cell,
            activation,
            canonical,
            universe,
            model: None,
        })
    }

    /// The (inputs, transistors) group key used for training/inference
    /// grouping (paper §II.B).
    pub fn group_key(&self) -> (usize, usize) {
        (self.cell.num_inputs(), self.cell.num_transistors())
    }

    /// The matrix layout of this cell's group.
    pub fn layout(&self) -> MatrixLayout {
        MatrixLayout {
            num_inputs: self.cell.num_inputs(),
            num_transistors: self.cell.num_transistors(),
        }
    }

    /// Encodes the feature row for (`stimulus` index, defect `injection`).
    ///
    /// Pass [`Injection::None`] for a "free" row.
    pub fn encode_row(&self, stimulus: usize, injection: Injection) -> Vec<f32> {
        let layout = self.layout();
        let mut row = vec![0.0f32; layout.num_features()];
        let stim = &self.activation.stimuli()[stimulus];
        for (i, w) in stim.waves().iter().enumerate() {
            row[layout.input_col(i)] = w.code() as f32;
        }
        row[layout.output_col()] = self.activation.output_waves()[stimulus].code() as f32;
        for (tid, _) in self.cell.transistor_ids() {
            let k = self.canonical.position(tid);
            row[layout.activity_col(k)] =
                self.activation.transistor_wave(stimulus, tid).code() as f32;
        }
        let mut flag = |tid: ca_netlist::TransistorId, term: Terminal| {
            let k = self.canonical.position(tid);
            row[layout.defect_col(k, term)] = 1.0;
        };
        let kind_code = match injection {
            Injection::None => 0.0,
            Injection::Open {
                transistor,
                terminal,
            } => {
                flag(transistor, terminal);
                1.0
            }
            Injection::Short { transistor, a, b } => {
                flag(transistor, a);
                flag(transistor, b);
                2.0
            }
            Injection::NetShort { a, b } => {
                for (tid, t) in self.cell.transistor_ids() {
                    for term in Terminal::CHANNEL_AND_GATE {
                        if t.terminal(term) == a || t.terminal(term) == b {
                            let k = self.canonical.position(tid);
                            row[layout.defect_col(k, term)] = 1.0;
                        }
                    }
                }
                2.0
            }
        };
        row[layout.kind_col()] = kind_code;
        row
    }

    /// Builds the labelled training rows of this cell: one row per
    /// ⟨defect, stimulus⟩ plus the defect-free rows.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no ground-truth model.
    pub fn training_rows(&self, out: &mut Dataset) {
        let model = self
            .model
            .as_ref()
            .expect("training_rows requires a characterized cell");
        let n_stimuli = self.activation.stimuli().len();
        for s in 0..n_stimuli {
            out.push_row(&self.encode_row(s, Injection::None), 0);
        }
        for defect in self.universe.defects() {
            for s in 0..n_stimuli {
                let label = u32::from(model.detects(defect.id, s));
                out.push_row(&self.encode_row(s, defect.injection), label);
            }
        }
    }

    /// Predicts a full CA model using `predict` for each ⟨defect,
    /// stimulus⟩ row.
    pub fn predict_model(&self, mut predict: impl FnMut(&[f32]) -> bool) -> CaModel {
        let n_stimuli = self.activation.stimuli().len();
        let rows: Vec<BitRow> = self
            .universe
            .defects()
            .iter()
            .map(|defect| {
                let mut row = BitRow::zeros(n_stimuli);
                for s in 0..n_stimuli {
                    let features = self.encode_row(s, defect.injection);
                    row.set(s, predict(&features));
                }
                row
            })
            .collect();
        CaModel::from_rows(&self.cell, self.universe.clone(), rows)
    }

    /// Prediction accuracy of `predicted` against this cell's ground
    /// truth (all defects).
    ///
    /// # Panics
    ///
    /// Panics if the cell has no ground-truth model.
    pub fn accuracy_of(&self, predicted: &CaModel) -> f64 {
        self.model
            .as_ref()
            .expect("accuracy requires ground truth")
            .agreement(predicted)
    }

    /// Prediction accuracy restricted to one defect category; the paper
    /// reports opens and shorts separately (§V.A).
    ///
    /// # Panics
    ///
    /// Panics if the cell has no ground-truth model.
    pub fn accuracy_of_kind(&self, predicted: &CaModel, kind: DefectKind) -> f64 {
        self.model
            .as_ref()
            .expect("accuracy requires ground truth")
            .agreement_of_kind(predicted, kind)
    }

    /// Number of defect kinds in the universe: `(opens, shorts)`.
    pub fn defect_counts(&self) -> (usize, usize) {
        let opens = self
            .universe
            .defects()
            .iter()
            .filter(|d| d.kind == DefectKind::Open)
            .count();
        (opens, self.universe.len() - opens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

    fn prepared() -> PreparedCell {
        let cell = spice::parse_cell(NAND2).unwrap();
        PreparedCell::characterize(cell, GenerateOptions::default()).unwrap()
    }

    #[test]
    fn layout_indices_are_disjoint_and_dense() {
        let layout = MatrixLayout {
            num_inputs: 2,
            num_transistors: 4,
        };
        assert_eq!(layout.num_features(), 2 + 1 + 4 + 12 + 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            assert!(seen.insert(layout.input_col(i)));
        }
        assert!(seen.insert(layout.output_col()));
        for k in 0..4 {
            assert!(seen.insert(layout.activity_col(k)));
            for t in [Terminal::Drain, Terminal::Gate, Terminal::Source] {
                assert!(seen.insert(layout.defect_col(k, t)));
            }
        }
        assert!(seen.insert(layout.kind_col()));
        assert_eq!(seen.len(), layout.num_features());
        assert_eq!(layout.column_names().len(), layout.num_features());
    }

    #[test]
    fn free_row_has_zero_flags() {
        let p = prepared();
        let layout = p.layout();
        let row = p.encode_row(0, Injection::None);
        assert_eq!(row[layout.kind_col()], 0.0);
        for k in 0..4 {
            for t in [Terminal::Drain, Terminal::Gate, Terminal::Source] {
                assert_eq!(row[layout.defect_col(k, t)], 0.0);
            }
        }
        // AB=00: both PMOS active, both NMOS passive.
        assert_eq!(row[layout.input_col(0)], 0.0);
        assert_eq!(row[layout.output_col()], 1.0);
    }

    #[test]
    fn short_row_flags_both_terminals() {
        let p = prepared();
        let layout = p.layout();
        let mpx = p.cell.find_transistor("MPX").unwrap();
        let injection = Injection::Short {
            transistor: mpx,
            a: Terminal::Drain,
            b: Terminal::Source,
        };
        let row = p.encode_row(0, injection);
        let k = p.canonical.position(mpx);
        assert_eq!(row[layout.defect_col(k, Terminal::Drain)], 1.0);
        assert_eq!(row[layout.defect_col(k, Terminal::Source)], 1.0);
        assert_eq!(row[layout.defect_col(k, Terminal::Gate)], 0.0);
        assert_eq!(row[layout.kind_col()], 2.0);
        let flags: f32 = (0..4)
            .flat_map(|k| {
                [Terminal::Drain, Terminal::Gate, Terminal::Source]
                    .map(|t| row[layout.defect_col(k, t)])
            })
            .sum();
        assert_eq!(flags, 2.0);
    }

    #[test]
    fn training_rows_count_and_labels() {
        let p = prepared();
        let layout = p.layout();
        let mut data = Dataset::new(layout.num_features());
        p.training_rows(&mut data);
        // 16 free rows + 24 defects x 16 stimuli.
        assert_eq!(data.len(), 16 + 24 * 16);
        // Free rows are labelled 0.
        for i in 0..16 {
            assert_eq!(data.label(i), 0);
        }
        // Some defect rows are labelled 1.
        assert!(data.labels().contains(&1));
    }

    #[test]
    fn perfect_oracle_reproduces_ground_truth() {
        let p = prepared();
        let truth = p.model.clone().unwrap();
        // An oracle that re-simulates is exactly the conventional flow;
        // emulate it by looking labels up from the truth model.
        let universe = p.universe.clone();
        let mut cursor = Vec::new();
        for d in universe.defects() {
            for s in 0..16 {
                cursor.push(truth.detects(d.id, s));
            }
        }
        let mut i = 0;
        let predicted = p.predict_model(|_| {
            let v = cursor[i];
            i += 1;
            v
        });
        assert!((p.accuracy_of(&predicted) - 1.0).abs() < 1e-12);
        assert_eq!(predicted.classes.len(), truth.classes.len());
    }

    #[test]
    fn defect_counts_split() {
        let p = prepared();
        assert_eq!(p.defect_counts(), (12, 12));
    }

    #[test]
    fn budgeted_characterization_matches_unlimited() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let p = PreparedCell::characterize_budgeted(
            cell,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
        )
        .unwrap();
        let q = prepared();
        assert_eq!(p.model.as_ref().unwrap(), q.model.as_ref().unwrap());
        assert!(!p.model.as_ref().unwrap().degraded);
    }

    #[test]
    fn budgeted_characterization_truncates_universe() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let budget = SimBudget {
            max_defects: Some(10),
            ..SimBudget::unlimited()
        };
        let p =
            PreparedCell::characterize_budgeted(cell, GenerateOptions::default(), &budget).unwrap();
        let model = p.model.as_ref().unwrap();
        assert!(model.degraded);
        assert_eq!(model.universe.len(), 10);
        // The prepared universe is aligned with the truncated model.
        assert_eq!(p.universe.len(), 10);
    }
}
