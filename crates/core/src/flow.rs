//! CA model generation flows: conventional, ML-based and hybrid
//! (paper Fig. 1, Fig. 2 and Fig. 7).

use crate::canonical::CanonicalCell;
use crate::cost::CostModel;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use ca_defects::{CaModel, GenerateOptions};
use ca_ml::{Classifier, Dataset, ForestParams, RandomForest};
use ca_netlist::Cell;
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of the ML flow.
#[derive(Debug, Clone)]
pub struct MlFlowParams {
    /// Random-forest hyperparameters.
    pub forest: ForestParams,
    /// Training-row cap per cell: all detected (label 1) rows are kept,
    /// undetected rows are deterministically subsampled. `None` = keep
    /// everything.
    pub max_rows_per_cell: Option<usize>,
    /// Keep per-group training data so the hybrid feedback loop can
    /// retrain (costs memory).
    pub retain_training_data: bool,
}

impl Default for MlFlowParams {
    fn default() -> MlFlowParams {
        MlFlowParams {
            forest: ForestParams::default(),
            max_rows_per_cell: None,
            retain_training_data: true,
        }
    }
}

impl MlFlowParams {
    /// Faster settings for tests and quick sweeps.
    pub fn quick() -> MlFlowParams {
        MlFlowParams {
            forest: ForestParams::quick(),
            max_rows_per_cell: Some(20_000),
            retain_training_data: true,
        }
    }
}

/// Runs the conventional, simulation-based flow (Fig. 1).
pub fn conventional_flow(cell: &Cell, options: GenerateOptions) -> CaModel {
    CaModel::generate(cell, options)
}

/// Builds the labelled dataset of a cell group and trains a forest on it.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] when `cells` is empty or
/// contains no characterized cell.
pub fn train_group_forest(
    cells: &[&PreparedCell],
    params: &MlFlowParams,
) -> Result<(RandomForest, Dataset), CoreError> {
    let mut characterized: Vec<&PreparedCell> = cells
        .iter()
        .copied()
        .filter(|c| c.model.is_some())
        .collect();
    characterized.sort_by(|a, b| a.cell.name().cmp(b.cell.name()));
    let first = characterized.first().ok_or(CoreError::EmptyTrainingSet)?;
    let layout = first.layout();
    let mut data = Dataset::new(layout.num_features());
    for (ci, prepared) in characterized.iter().enumerate() {
        let mut cell_data = Dataset::new(layout.num_features());
        prepared.training_rows(&mut cell_data);
        match params.max_rows_per_cell {
            Some(cap) if cell_data.len() > cap => {
                let kept = subsample_rows(&cell_data, cap, ci as u64);
                data.extend_from(&cell_data.subset(&kept));
            }
            _ => data.extend_from(&cell_data),
        }
    }
    let mut forest = RandomForest::new(params.forest.clone());
    forest.fit(&data);
    Ok((forest, data))
}

/// Keeps every positive row and a deterministic subsample of negatives so
/// that roughly `cap` rows remain.
fn subsample_rows(data: &Dataset, cap: usize, seed: u64) -> Vec<usize> {
    let positives: Vec<usize> = (0..data.len()).filter(|&i| data.label(i) == 1).collect();
    let negatives: Vec<usize> = (0..data.len()).filter(|&i| data.label(i) == 0).collect();
    let budget = cap.saturating_sub(positives.len()).max(1);
    let mut kept = positives;
    if negatives.len() <= budget {
        kept.extend(negatives);
    } else {
        // Deterministic stride sampling with a seeded offset.
        let stride = negatives.len() as f64 / budget as f64;
        let offset = (seed.wrapping_mul(0x9E3779B97F4A7C15) % 997) as f64 / 997.0;
        for j in 0..budget {
            let idx = ((j as f64 + offset) * stride) as usize;
            kept.push(negatives[idx.min(negatives.len() - 1)]);
        }
    }
    kept.sort_unstable();
    kept.dedup();
    kept
}

struct TrainedGroup {
    forest: RandomForest,
    training_data: Option<Dataset>,
    num_cells: usize,
}

/// The ML-based generation flow (Fig. 2): per-group random forests
/// trained on existing CA models, predicting models for new cells.
pub struct MlFlow {
    groups: BTreeMap<(usize, usize), TrainedGroup>,
    params: MlFlowParams,
}

impl std::fmt::Debug for MlFlow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlFlow")
            .field("groups", &self.groups.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MlFlow {
    /// Trains one forest per (inputs, transistors) group of `corpus`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`] when no cell in the corpus
    /// carries a ground-truth model.
    pub fn train(corpus: &[PreparedCell], params: MlFlowParams) -> Result<MlFlow, CoreError> {
        let mut by_key: BTreeMap<(usize, usize), Vec<&PreparedCell>> = BTreeMap::new();
        for prepared in corpus.iter().filter(|c| c.model.is_some()) {
            by_key
                .entry(prepared.group_key())
                .or_default()
                .push(prepared);
        }
        if by_key.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let _span = ca_obs::span_root("ca_core.ml_flow.train");
        ca_obs::counter!("ca_core.ml_flow.groups_trained", Work).add(by_key.len() as u64);
        let mut groups = BTreeMap::new();
        for (key, cells) in by_key {
            let (forest, data) = train_group_forest(&cells, &params)?;
            groups.insert(
                key,
                TrainedGroup {
                    forest,
                    training_data: params.retain_training_data.then_some(data),
                    num_cells: cells.len(),
                },
            );
        }
        Ok(MlFlow { groups, params })
    }

    /// Group keys with a trained forest.
    pub fn group_keys(&self) -> Vec<(usize, usize)> {
        self.groups.keys().copied().collect()
    }

    /// Number of training cells in the group of `key`.
    pub fn group_size(&self, key: (usize, usize)) -> Option<usize> {
        self.groups.get(&key).map(|g| g.num_cells)
    }

    /// Whether a forest exists for the cell's group.
    pub fn covers(&self, prepared: &PreparedCell) -> bool {
        self.groups.contains_key(&prepared.group_key())
    }

    /// Predicts the CA model of a prepared (new) cell.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoMatchingGroup`] when no forest matches the
    /// cell's (inputs, transistors) key.
    pub fn predict(&self, prepared: &PreparedCell) -> Result<CaModel, CoreError> {
        let group =
            self.groups
                .get(&prepared.group_key())
                .ok_or_else(|| CoreError::NoMatchingGroup {
                    cell: prepared.cell.name().to_string(),
                    inputs: prepared.cell.num_inputs(),
                    transistors: prepared.cell.num_transistors(),
                })?;
        Ok(prepared.predict_model(|row| group.forest.predict(row) == 1))
    }

    /// Predicts models for a batch of prepared cells on `executor`,
    /// returning them in input order (prediction is read-only over the
    /// trained forests, so the cells are independent).
    ///
    /// # Errors
    ///
    /// Returns the first (in input order) [`CoreError::NoMatchingGroup`].
    pub fn predict_batch(
        &self,
        prepared: &[PreparedCell],
        executor: &ca_exec::Executor,
    ) -> Result<Vec<CaModel>, CoreError> {
        let _span = ca_obs::span_root("ca_core.ml_flow.predict_batch");
        ca_obs::counter!("ca_core.ml_flow.cells_predicted", Work).add(prepared.len() as u64);
        executor
            .map(prepared, |_, p| self.predict(p))
            .into_iter()
            .collect()
    }

    /// Adds a freshly characterized cell to its group and retrains the
    /// group (the Fig. 7 feedback loop). A new group is created when none
    /// exists.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`] if `prepared` has no model,
    /// or [`CoreError::Unsupported`] when training data was not retained.
    pub fn reinforce(&mut self, prepared: &PreparedCell) -> Result<(), CoreError> {
        if prepared.model.is_none() {
            return Err(CoreError::EmptyTrainingSet);
        }
        if !self.params.retain_training_data {
            return Err(CoreError::Unsupported(
                "reinforcement requires retain_training_data".into(),
            ));
        }
        let key = prepared.group_key();
        let layout = prepared.layout();
        let mut cell_data = Dataset::new(layout.num_features());
        prepared.training_rows(&mut cell_data);
        if let Some(cap) = self.params.max_rows_per_cell {
            if cell_data.len() > cap {
                let kept = subsample_rows(&cell_data, cap, 0xFEED);
                cell_data = cell_data.subset(&kept);
            }
        }
        match self.groups.get_mut(&key) {
            Some(group) => {
                let data = group
                    .training_data
                    .as_mut()
                    .expect("retain_training_data checked above");
                data.extend_from(&cell_data);
                let mut forest = RandomForest::new(self.params.forest.clone());
                forest.fit(data);
                group.forest = forest;
                group.num_cells += 1;
            }
            None => {
                let mut forest = RandomForest::new(self.params.forest.clone());
                forest.fit(&cell_data);
                self.groups.insert(
                    key,
                    TrainedGroup {
                        forest,
                        training_data: Some(cell_data),
                        num_cells: 1,
                    },
                );
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Structural gate (§V.B / §V.C)
// ---------------------------------------------------------------------

/// Outcome of the structural analysis for a new cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructuralMatch {
    /// A training cell has the identical structure (wiring hash match).
    Identical,
    /// A training cell has an equivalent structure (Fig. 6 reduction
    /// match).
    Equivalent,
    /// No identical or equivalent structure is known.
    New,
}

impl std::fmt::Display for StructuralMatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralMatch::Identical => write!(f, "identical"),
            StructuralMatch::Equivalent => write!(f, "equivalent"),
            StructuralMatch::New => write!(f, "new"),
        }
    }
}

/// Index of the known (training) structures, queried by the hybrid gate.
#[derive(Debug, Clone, Default)]
pub struct StructureIndex {
    identical: BTreeSet<u64>,
    reduced: BTreeSet<u64>,
}

impl StructureIndex {
    /// An empty index.
    pub fn new() -> StructureIndex {
        StructureIndex::default()
    }

    /// Builds the index over a training corpus.
    pub fn from_corpus(corpus: &[PreparedCell]) -> StructureIndex {
        let mut index = StructureIndex::new();
        for prepared in corpus {
            index.insert(&prepared.canonical);
        }
        index
    }

    /// Registers a known structure.
    pub fn insert(&mut self, canonical: &CanonicalCell) {
        self.identical.insert(canonical.wiring_hash());
        self.reduced.insert(canonical.reduced_hash());
    }

    /// Classifies a new cell's structure against the known set.
    pub fn classify(&self, canonical: &CanonicalCell) -> StructuralMatch {
        if self.identical.contains(&canonical.wiring_hash()) {
            StructuralMatch::Identical
        } else if self.reduced.contains(&canonical.reduced_hash()) {
            StructuralMatch::Equivalent
        } else {
            StructuralMatch::New
        }
    }

    /// Number of distinct identical-structure signatures known.
    pub fn len(&self) -> usize {
        self.identical.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.identical.is_empty()
    }
}

// ---------------------------------------------------------------------
// Hybrid flow (Fig. 7)
// ---------------------------------------------------------------------

/// How a cell was generated by the hybrid flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// ML prediction; the gate found this structural match.
    Ml(StructuralMatch),
    /// Conventional simulation (no usable structural match).
    Simulated,
}

/// Per-cell outcome of a hybrid run.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell name.
    pub name: String,
    /// Route taken.
    pub route: Route,
    /// Estimated generation time of the taken route, seconds.
    pub time_s: f64,
    /// Estimated conventional time for comparison, seconds.
    pub simulation_time_s: f64,
    /// Prediction accuracy vs ground truth (only when evaluation is on
    /// and the route was ML).
    pub accuracy: Option<f64>,
}

/// Options of the hybrid flow.
#[derive(Debug, Clone, Copy)]
pub struct HybridOptions {
    /// Feed simulated cells back into the training set (Fig. 7 loop).
    pub reinforce: bool,
    /// Also run the conventional flow for ML-routed cells to measure the
    /// prediction accuracy (experiment mode; costs simulation time but is
    /// not charged to the hybrid clock).
    pub evaluate_ml_accuracy: bool,
    /// Options of the conventional flow.
    pub generate: GenerateOptions,
}

impl Default for HybridOptions {
    fn default() -> HybridOptions {
        HybridOptions {
            reinforce: true,
            evaluate_ml_accuracy: false,
            generate: GenerateOptions::default(),
        }
    }
}

/// Aggregated outcomes of a hybrid run.
#[derive(Debug, Clone, Default)]
pub struct HybridReport {
    /// Per-cell outcomes in processing order.
    pub outcomes: Vec<CellOutcome>,
}

impl HybridReport {
    /// `(identical, equivalent, simulated)` cell counts.
    pub fn route_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in &self.outcomes {
            match o.route {
                Route::Ml(StructuralMatch::Identical) => c.0 += 1,
                Route::Ml(StructuralMatch::Equivalent) => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    /// Total hybrid generation time, seconds.
    pub fn hybrid_time_s(&self) -> f64 {
        self.outcomes.iter().map(|o| o.time_s).sum()
    }

    /// Total conventional-only generation time, seconds.
    pub fn conventional_time_s(&self) -> f64 {
        self.outcomes.iter().map(|o| o.simulation_time_s).sum()
    }

    /// Overall reduction in generation time, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        let conventional = self.conventional_time_s();
        if conventional == 0.0 {
            return 0.0;
        }
        1.0 - self.hybrid_time_s() / conventional
    }

    /// Reduction restricted to the ML-routed cells.
    pub fn ml_reduction(&self) -> f64 {
        let (mut ml, mut conv) = (0.0, 0.0);
        for o in &self.outcomes {
            if matches!(o.route, Route::Ml(_)) {
                ml += o.time_s;
                conv += o.simulation_time_s;
            }
        }
        if conv == 0.0 {
            0.0
        } else {
            1.0 - ml / conv
        }
    }

    /// Mean accuracy over evaluated ML-routed cells.
    pub fn mean_ml_accuracy(&self) -> Option<f64> {
        let accs: Vec<f64> = self.outcomes.iter().filter_map(|o| o.accuracy).collect();
        if accs.is_empty() {
            None
        } else {
            Some(accs.iter().sum::<f64>() / accs.len() as f64)
        }
    }
}

/// The hybrid generation flow of Fig. 7: a structural gate dispatches each
/// new cell to ML prediction or conventional simulation, and simulated
/// cells reinforce the training set.
#[derive(Debug)]
pub struct HybridFlow {
    ml: MlFlow,
    index: StructureIndex,
    cost: CostModel,
    options: HybridOptions,
}

impl HybridFlow {
    /// Builds the flow from a characterized training corpus.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`] when the corpus carries no
    /// ground-truth models.
    pub fn new(
        corpus: &[PreparedCell],
        params: MlFlowParams,
        cost: CostModel,
        options: HybridOptions,
    ) -> Result<HybridFlow, CoreError> {
        let ml = MlFlow::train(corpus, params)?;
        let index = StructureIndex::from_corpus(corpus);
        Ok(HybridFlow {
            ml,
            index,
            cost,
            options,
        })
    }

    /// Access to the inner ML flow.
    pub fn ml(&self) -> &MlFlow {
        &self.ml
    }

    /// Access to the structural index.
    pub fn index(&self) -> &StructureIndex {
        &self.index
    }

    /// Generates the CA model of one new cell, routing per the gate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GoldenNotBinary`] for invalid netlists.
    pub fn generate(&mut self, cell: Cell) -> Result<(CaModel, CellOutcome), CoreError> {
        let prepared = PreparedCell::prepare(cell)?;
        let simulation_time_s = self.cost.simulation_time_s(&prepared.cell);
        let matched = self.index.classify(&prepared.canonical);
        let use_ml = matched != StructuralMatch::New && self.ml.covers(&prepared);
        if use_ml {
            let predicted = self.ml.predict(&prepared)?;
            let accuracy = if self.options.evaluate_ml_accuracy {
                let truth = conventional_flow(&prepared.cell, self.options.generate);
                Some(truth.agreement(&predicted))
            } else {
                None
            };
            let outcome = CellOutcome {
                name: prepared.cell.name().to_string(),
                route: Route::Ml(matched),
                time_s: self.cost.ml_time_s(&prepared.cell),
                simulation_time_s,
                accuracy,
            };
            return Ok((predicted, outcome));
        }
        // Conventional route + feedback. The structure index is updated
        // only after the whole route (including reinforcement) succeeds:
        // registering the structure first would make a later failure
        // poison the index, routing future look-alike cells to an ML
        // group that was never trained on this structure.
        let model = conventional_flow(&prepared.cell, self.options.generate);
        if self.options.reinforce {
            let canonical = prepared.canonical.clone();
            let mut characterized = prepared;
            characterized.model = Some(model.clone());
            self.ml.reinforce(&characterized)?;
            self.index.insert(&canonical);
        } else {
            self.index.insert(&prepared.canonical);
        }
        let outcome = CellOutcome {
            name: model.cell_name.clone(),
            route: Route::Simulated,
            time_s: simulation_time_s,
            simulation_time_s,
            accuracy: None,
        };
        Ok((model, outcome))
    }

    /// Generates models for a batch of new cells.
    ///
    /// # Errors
    ///
    /// Propagates the first per-cell error.
    pub fn run(
        &mut self,
        cells: impl IntoIterator<Item = Cell>,
    ) -> Result<(Vec<CaModel>, HybridReport), CoreError> {
        let mut models = Vec::new();
        let mut report = HybridReport::default();
        for cell in cells {
            let (model, outcome) = self.generate(cell)?;
            models.push(model);
            report.outcomes.push(outcome);
        }
        Ok((models, report))
    }

    /// Like [`HybridFlow::run`], but a failing cell is quarantined
    /// instead of aborting the batch: each cell is lint-gated first and
    /// its generation is panic-isolated, so a quarantined cell never
    /// reaches the structure index or the training set.
    pub fn run_robust(
        &mut self,
        cells: impl IntoIterator<Item = Cell>,
    ) -> (Vec<CaModel>, HybridReport, crate::robust::Quarantine) {
        use crate::robust::{FailurePhase, Quarantine, QuarantineEntry};
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut models = Vec::new();
        let mut report = HybridReport::default();
        let mut quarantine = Quarantine::default();
        for cell in cells {
            let started = ca_obs::Stopwatch::start();
            let name = cell.name().to_string();
            if let Some(finding) = ca_netlist::lint::lint(&cell)
                .into_iter()
                .find(|f| f.severity == ca_netlist::lint::Severity::Error)
            {
                quarantine.entries.push(QuarantineEntry {
                    cell: name,
                    phase: FailurePhase::Lint,
                    reason: finding.to_string(),
                    elapsed: started.elapsed(),
                    retries: 0,
                });
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| self.generate(cell))) {
                Ok(Ok((model, outcome))) => {
                    models.push(model);
                    report.outcomes.push(outcome);
                }
                Ok(Err(err)) => {
                    let phase = match &err {
                        CoreError::SolverDiverged { .. } | CoreError::BudgetExceeded { .. } => {
                            FailurePhase::Characterize
                        }
                        _ => FailurePhase::Prepare,
                    };
                    quarantine.entries.push(QuarantineEntry {
                        cell: name,
                        phase,
                        reason: err.to_string(),
                        elapsed: started.elapsed(),
                        retries: 0,
                    });
                }
                Err(payload) => {
                    quarantine.entries.push(QuarantineEntry {
                        cell: name,
                        phase: FailurePhase::Prepare,
                        reason: format!("panic: {}", ca_exec::panic_message(&*payload)),
                        elapsed: started.elapsed(),
                        retries: 0,
                    });
                }
            }
        }
        (models, report, quarantine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;

    fn quick_corpus(tech: Technology, max_cells: usize) -> Vec<PreparedCell> {
        let lib = generate_library(&LibraryConfig::quick(tech));
        lib.cells
            .into_iter()
            .take(max_cells)
            .map(|lc| PreparedCell::characterize(lc.cell, GenerateOptions::default()).unwrap())
            .collect()
    }

    #[test]
    fn ml_flow_learns_its_own_training_cells() {
        let corpus = quick_corpus(Technology::Soi28, 10);
        let flow = MlFlow::train(&corpus, MlFlowParams::quick()).unwrap();
        // Training cells are predicted nearly perfectly on average. A few
        // bits are intrinsically ambiguous in the paper's encoding (cells
        // of different functions in one group can collide on identical
        // CA-matrix rows with opposite labels), so per-cell accuracy is
        // high but not necessarily 1.0.
        let mut total = 0.0;
        for prepared in &corpus {
            let predicted = flow.predict(prepared).unwrap();
            total += prepared.accuracy_of(&predicted);
        }
        let mean = total / corpus.len() as f64;
        assert!(mean > 0.93, "mean training accuracy {mean}");
    }

    #[test]
    fn predict_batch_matches_per_cell_predict_at_any_thread_count() {
        let corpus = quick_corpus(Technology::Soi28, 10);
        let flow = MlFlow::train(&corpus, MlFlowParams::quick()).unwrap();
        let expected: Vec<CaModel> = corpus.iter().map(|p| flow.predict(p).unwrap()).collect();
        for threads in [1, 8] {
            let batched = flow
                .predict_batch(&corpus, &ca_exec::Executor::with_threads(threads))
                .unwrap();
            assert_eq!(batched, expected, "threads={threads}");
        }
    }

    #[test]
    fn predict_batch_surfaces_the_first_uncovered_cell() {
        let corpus = quick_corpus(Technology::Soi28, 4);
        let flow = MlFlow::train(&corpus[..2], MlFlowParams::quick()).unwrap();
        if corpus.iter().any(|p| !flow.covers(p)) {
            let err = flow
                .predict_batch(&corpus, &ca_exec::Executor::with_threads(4))
                .unwrap_err();
            assert!(matches!(err, CoreError::NoMatchingGroup { .. }), "{err:?}");
        }
    }

    #[test]
    fn missing_group_is_reported() {
        let corpus = quick_corpus(Technology::Soi28, 4);
        let flow = MlFlow::train(&corpus, MlFlowParams::quick()).unwrap();
        // A 3-input cell from a group the corpus cannot contain.
        let lib = generate_library(&LibraryConfig::quick(Technology::C28));
        let odd = lib
            .cells
            .into_iter()
            .find(|c| c.template == "XOR3")
            .map(|c| PreparedCell::prepare(c.cell).unwrap());
        if let Some(odd) = odd {
            if !flow.covers(&odd) {
                let err = flow.predict(&odd).unwrap_err();
                assert!(matches!(err, CoreError::NoMatchingGroup { .. }));
            }
        }
    }

    #[test]
    fn structural_gate_classifies_three_ways() {
        let soi = generate_library(&LibraryConfig::quick(Technology::Soi28));
        let corpus: Vec<PreparedCell> = soi
            .cells
            .iter()
            .filter(|c| c.drive == 1)
            .take(8)
            .map(|lc| PreparedCell::prepare(lc.cell.clone()).unwrap())
            .collect();
        let index = StructureIndex::from_corpus(&corpus);
        assert!(!index.is_empty());
        // Same cells from another technology: identical.
        let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
        let nand2 = c28
            .cells
            .iter()
            .find(|c| c.template == "NAND2" && c.drive == 1)
            .unwrap();
        let p = PreparedCell::prepare(nand2.cell.clone()).unwrap();
        assert_eq!(index.classify(&p.canonical), StructuralMatch::Identical);
        // A higher drive of a known function: equivalent (if not in corpus).
        let nand2_x2 = soi
            .cells
            .iter()
            .find(|c| c.template == "NAND2" && c.drive == 2)
            .unwrap();
        let p2 = PreparedCell::prepare(nand2_x2.cell.clone()).unwrap();
        assert!(matches!(
            index.classify(&p2.canonical),
            StructuralMatch::Equivalent | StructuralMatch::Identical
        ));
        // A function not in the corpus: new.
        let xor3 = c28.cells.iter().find(|c| c.template == "XOR3");
        if let Some(xor3) = xor3 {
            let p3 = PreparedCell::prepare(xor3.cell.clone()).unwrap();
            assert_eq!(index.classify(&p3.canonical), StructuralMatch::New);
        }
    }

    #[test]
    fn hybrid_flow_routes_and_reports() {
        let corpus = quick_corpus(Technology::Soi28, 8);
        let mut hybrid = HybridFlow::new(
            &corpus,
            MlFlowParams::quick(),
            CostModel::paper_calibrated(),
            HybridOptions {
                reinforce: true,
                evaluate_ml_accuracy: true,
                generate: GenerateOptions::default(),
            },
        )
        .unwrap();
        let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
        let new_cells: Vec<Cell> = c28.cells.iter().take(6).map(|c| c.cell.clone()).collect();
        let (models, report) = hybrid.run(new_cells).unwrap();
        assert_eq!(models.len(), 6);
        assert_eq!(report.outcomes.len(), 6);
        let (identical, equivalent, simulated) = report.route_counts();
        assert_eq!(identical + equivalent + simulated, 6);
        // Identical structures exist across our synthetic technologies.
        assert!(identical > 0, "routes: {:?}", report.route_counts());
        // The hybrid clock beats the conventional clock whenever at least
        // one cell took the ML route.
        if identical + equivalent > 0 {
            assert!(report.hybrid_time_s() < report.conventional_time_s());
            assert!(report.reduction() > 0.0);
            assert!(report.ml_reduction() > 0.9);
        }
    }

    #[test]
    fn robust_hybrid_run_quarantines_bad_cells_and_continues() {
        use ca_netlist::corrupt::{corrupt_cell, Corruption};
        let corpus = quick_corpus(Technology::Soi28, 6);
        let mut hybrid = HybridFlow::new(
            &corpus,
            MlFlowParams::quick(),
            CostModel::paper_calibrated(),
            HybridOptions::default(),
        )
        .unwrap();
        let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
        let mut cells: Vec<Cell> = c28.cells.iter().take(4).map(|c| c.cell.clone()).collect();
        // One structurally broken cell (caught by the lint gate) and one
        // multi-output cell (caught inside generation).
        cells[1] = corrupt_cell(&cells[1], Corruption::DanglingGate, 3).unwrap();
        // Not every cell has an internal net to promote; take the first
        // library cell that does.
        cells[2] = c28
            .cells
            .iter()
            .find_map(|lc| corrupt_cell(&lc.cell, Corruption::MultiOutput, 3).ok())
            .unwrap();
        let (models, report, quarantine) = hybrid.run_robust(cells);
        assert_eq!(models.len(), 2);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(quarantine.len(), 2);
        assert_eq!(
            quarantine.entries[0].phase,
            crate::robust::FailurePhase::Lint
        );
        assert!(quarantine.entries[0].reason.contains("floating-gate-net"));
        assert_eq!(
            quarantine.entries[1].phase,
            crate::robust::FailurePhase::Prepare
        );
        assert!(quarantine.entries[1].reason.contains("single-output"));
        // The surviving flow still works after the failures.
        let more: Vec<Cell> = c28
            .cells
            .iter()
            .skip(4)
            .take(2)
            .map(|c| c.cell.clone())
            .collect();
        let (more_models, _, more_quarantine) = hybrid.run_robust(more);
        assert_eq!(more_models.len(), 2);
        assert!(more_quarantine.is_empty());
    }

    #[test]
    fn reinforcement_creates_or_extends_groups() {
        let corpus = quick_corpus(Technology::Soi28, 4);
        let mut flow = MlFlow::train(&corpus, MlFlowParams::quick()).unwrap();
        let before = flow.group_keys().len();
        // Reinforce with a cell from a (probably) new group.
        let c28 = quick_corpus(Technology::C28, 8);
        let newcomer = c28
            .into_iter()
            .find(|p| !flow.group_keys().contains(&p.group_key()));
        if let Some(newcomer) = newcomer {
            flow.reinforce(&newcomer).unwrap();
            assert_eq!(flow.group_keys().len(), before + 1);
            assert!(flow.covers(&newcomer));
        }
    }

    #[test]
    fn subsample_keeps_positives() {
        let mut data = Dataset::new(1);
        for i in 0..100 {
            data.push_row(&[i as f32], u32::from(i % 10 == 0));
        }
        let kept = subsample_rows(&data, 30, 7);
        assert!(kept.len() <= 31);
        let positives_kept = kept.iter().filter(|&&i| data.label(i) == 1).count();
        assert_eq!(positives_kept, 10);
    }
}
