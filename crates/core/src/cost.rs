//! Generation-time cost model (paper §V.C).
//!
//! The paper quantifies the hybrid flow's value in wall-clock time on a
//! single SPICE license: 204 simulated cells ≈ 172 days, 205 ML-predicted
//! cells ≈ 6 hours. We cannot run their SPICE farm, so the simulation side
//! is a *calibrated model* — per-cell time proportional to the number of
//! defective-cell simulations (defects × stimuli), with constants chosen
//! so the paper's 409-cell C40 subgroup lands near the published totals.
//! The ML side can also be measured for real on this machine.

use ca_netlist::Cell;

/// Seconds-per-unit constants of the generation-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Fixed SPICE setup time per cell (netlist extraction, licensing).
    pub spice_setup_s: f64,
    /// SPICE time per defective-cell simulation (one defect, one stimulus).
    pub spice_per_sim_s: f64,
    /// Fixed ML preparation time per cell (golden sim, CA-matrix build).
    pub ml_setup_s: f64,
    /// ML inference time per CA-matrix row.
    pub ml_per_row_s: f64,
}

impl CostModel {
    /// Constants calibrated against §V.C:
    ///
    /// * 204 simulated cells ≈ 172 days → ≈ 20.2 h/cell. With a typical
    ///   C40 cell at ~4 inputs / ~20 transistors (256 stimuli × 120
    ///   defects ≈ 30 720 simulations), that is ≈ 2.4 s per defect
    ///   simulation.
    /// * 205 predicted cells ≈ 21 947 s → ≈ 107 s/cell, i.e. ≈ 3.5 ms per
    ///   CA-matrix row at the same cell size.
    pub fn paper_calibrated() -> CostModel {
        CostModel {
            spice_setup_s: 600.0,
            spice_per_sim_s: 2.4,
            ml_setup_s: 2.0,
            ml_per_row_s: 0.0034,
        }
    }

    /// Number of defective-cell simulations the conventional flow runs
    /// for `cell` (defects × stimuli).
    pub fn simulation_count(cell: &Cell) -> usize {
        let stimuli = 4usize.pow(cell.num_inputs() as u32);
        let defects = cell.num_transistors() * 6;
        stimuli * defects
    }

    /// Estimated conventional (SPICE) generation time for `cell`, seconds.
    pub fn simulation_time_s(&self, cell: &Cell) -> f64 {
        self.spice_setup_s + self.spice_per_sim_s * Self::simulation_count(cell) as f64
    }

    /// Estimated ML generation time for `cell`, seconds.
    pub fn ml_time_s(&self, cell: &Cell) -> f64 {
        self.ml_setup_s + self.ml_per_row_s * Self::simulation_count(cell) as f64
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::paper_calibrated()
    }
}

/// Formats seconds as a compact human-readable duration.
pub fn format_duration(seconds: f64) -> String {
    if seconds >= 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 3_600.0 {
        format!("{:.1} h", seconds / 3_600.0)
    } else if seconds >= 60.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{seconds:.1} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn simulation_count_formula() {
        let cell = spice::parse_cell(NAND2).unwrap();
        assert_eq!(CostModel::simulation_count(&cell), 16 * 24);
    }

    #[test]
    fn ml_is_orders_of_magnitude_faster() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CostModel::paper_calibrated();
        let spice = model.simulation_time_s(&cell);
        let ml = model.ml_time_s(&cell);
        assert!(spice / ml > 100.0, "spice={spice} ml={ml}");
    }

    #[test]
    fn calibration_matches_paper_scale() {
        // A typical 4-input / 20-transistor cell should cost ~20 h SPICE
        // and ~2 min ML, matching §V.C's per-cell averages.
        let model = CostModel::paper_calibrated();
        let sims = 256.0 * 120.0;
        let spice_h = (model.spice_setup_s + model.spice_per_sim_s * sims) / 3600.0;
        assert!((15.0..25.0).contains(&spice_h), "{spice_h} h");
        let ml_s = model.ml_setup_s + model.ml_per_row_s * sims;
        assert!((60.0..180.0).contains(&ml_s), "{ml_s} s");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(30.0), "30.0 s");
        assert_eq!(format_duration(120.0), "2.0 min");
        assert_eq!(format_duration(7200.0), "2.0 h");
        assert_eq!(format_duration(172.0 * 86_400.0), "172.0 days");
    }
}
