//! Per-cell, deadline-aware characterization over a durable session —
//! the engine behind the `ca-serve` daemon.
//!
//! The batch drivers ([`characterize_library_robust_with_session`]
//! (crate::characterize_library_robust_with_session)) answer "run this
//! whole library"; a long-running service instead answers one cell at a
//! time, concurrently, with a per-request deadline. [`CellService`] is
//! that entry point:
//!
//! - **Open** binds a [`Session`] store to a [`Library`]: journaled
//!   records are re-verified exactly as a batch resume would (stale/
//!   invalid evicted, complete models seeded into the donor cache,
//!   degraded models and quarantine verdicts scheduled for replay).
//! - **Characterize** runs one cell through the same guarded pipeline as
//!   the robust driver (lint → golden → prepare/characterize, reduced-
//!   budget retries) and journals results under the *configured* budget,
//!   so a killed server resumes — and a batch run over the same store
//!   converges — byte-identically.
//! - **Deadlines** propagate into [`SimBudget::wall_clock`] as the
//!   tighter of the request's remaining time and the configured budget.
//!   A result is journaled only when the deadline was *not* the binding
//!   wall constraint of the final attempt: anything the deadline may
//!   have truncated is answered [`CellVerdict::DeadlineExceeded`] (or
//!   served un-journaled when the configured caps make attribution
//!   ambiguous), so the store never holds bytes a configured-budget run
//!   would not reproduce.

// Service code runs unattended for days; a stray unwrap kills the
// daemon instead of failing one request.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cache::CharCache;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use crate::robust::{characterize_cell_guarded, isolated, reduced_budget, FailurePhase};
use crate::session::{cell_fingerprint, Reuse, Session, SessionPlan, SessionReport};
use ca_defects::GenerateOptions;
use ca_netlist::library::Library;
use ca_netlist::Cell;
use ca_obs::clock::Deadline;
use ca_sim::SimBudget;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// The outcome of one service request.
#[derive(Debug)]
pub enum CellVerdict {
    /// A model landed: fresh simulation, certified donor hit, or
    /// store-verified reuse. `model` is always populated.
    Model(Box<PreparedCell>),
    /// The cell failed characterization — fresh diagnosis or a replayed
    /// journal verdict.
    Quarantined {
        /// Pipeline phase the failure happened in.
        phase: FailurePhase,
        /// Human-readable diagnosis.
        reason: String,
        /// Reduced-budget retries spent before giving up.
        retries: u32,
    },
    /// The request's deadline was the binding constraint: the work was
    /// cut short (or never started) and nothing was journaled.
    DeadlineExceeded,
}

/// A journaled record served without simulation (snapshot-isolated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredVerdict {
    /// A complete model's `.cam` body.
    Complete(String),
    /// A degraded model's `.cam` body.
    Degraded(String),
    /// A quarantine verdict.
    Quarantined {
        /// Diagnosis phase, when the stored byte decodes.
        phase: Option<FailurePhase>,
        /// Stored diagnosis.
        reason: String,
        /// Retries recorded at quarantine time.
        retries: u32,
    },
}

/// Memoized fresh outcomes, keyed by whole-netlist fingerprint so a
/// name collision between unrelated cells can never replay the wrong
/// verdict (the same identity check the session store uses).
enum Memo {
    Degraded(Box<PreparedCell>),
    Quarantined {
        phase: FailurePhase,
        reason: String,
        retries: u32,
    },
}

/// Per-cell characterization service over one durable session; see the
/// module docs. `Sync`: requests may run concurrently from any number of
/// threads, serializing only on the journal append and the small plan/
/// memo maps.
pub struct CellService {
    session: Session,
    cache: CharCache,
    options: GenerateOptions,
    budget: SimBudget,
    max_retries: u32,
    plan: SessionPlan,
    /// Fingerprint of each library cell, guarding plan reuse and
    /// journaling against same-name lookalikes submitted inline.
    library_fp: BTreeMap<String, u64>,
    memo: Mutex<BTreeMap<u64, Memo>>,
}

impl std::fmt::Debug for CellService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellService")
            .field("store", &self.session.path())
            .field("library_cells", &self.library_fp.len())
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl CellService {
    /// Opens (or resumes) the session store at `store` bound to
    /// `library`, re-verifying every journaled record against the live
    /// netlists exactly like a batch resume.
    ///
    /// # Errors
    ///
    /// [`CoreError::Storage`] when the store cannot be opened; journal
    /// corruption is recovered from, not failed on.
    pub fn open(
        store: impl AsRef<Path>,
        library: &Library,
        options: GenerateOptions,
        budget: SimBudget,
        max_retries: u32,
    ) -> Result<CellService, CoreError> {
        let session = Session::open(store)?;
        let cache = CharCache::new();
        let plan = session.plan(library, options, &budget, &cache, true);
        let library_fp = library
            .cells
            .iter()
            .map(|lc| (lc.cell.name().to_string(), cell_fingerprint(&lc.cell)))
            .collect();
        Ok(CellService {
            session,
            cache,
            options,
            budget,
            max_retries,
            plan,
            library_fp,
            memo: Mutex::new(BTreeMap::new()),
        })
    }

    /// The underlying session (crash hooks, path, report).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Session counters (reuse, evictions, journal appends/errors).
    pub fn report(&self) -> SessionReport {
        self.session.report()
    }

    /// Donor-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Compacts the journal when it carries duplicates, corruption or
    /// evictions. Called by the server on graceful drain.
    pub fn compact(&self) {
        self.session.maybe_compact();
    }

    /// Snapshot-isolated read of `name`'s journaled record, served
    /// without any simulation.
    pub fn lookup(&self, name: &str) -> Option<StoredVerdict> {
        let record = self.session.snapshot_record(name)?;
        Some(match record.payload {
            ca_store::Payload::Complete { cam } => StoredVerdict::Complete(cam),
            ca_store::Payload::Degraded { cam } => StoredVerdict::Degraded(cam),
            ca_store::Payload::Quarantined {
                phase,
                retries,
                reason,
            } => StoredVerdict::Quarantined {
                phase: crate::session::decode_phase(phase),
                reason,
                retries,
            },
        })
    }

    /// Characterizes one cell under `deadline`, reusing the journaled
    /// store, the certified donor cache and memoized verdicts; fresh
    /// outcomes are journaled as they land (see the module docs for the
    /// deadline/journal interaction). Never panics: cell failures come
    /// back as [`CellVerdict::Quarantined`].
    pub fn characterize_cell(&self, cell: &Cell, deadline: Deadline) -> CellVerdict {
        if deadline.expired() {
            return CellVerdict::DeadlineExceeded;
        }
        let name = cell.name();
        let fp = cell_fingerprint(cell);
        // 1. Store-verified reuse from the open-time plan — only when
        // the request's netlist *is* the library cell the plan verified.
        if self.library_fp.get(name) == Some(&fp) {
            match self.plan.reuse(name) {
                Some(Reuse::Degraded(p)) => return CellVerdict::Model(p.clone()),
                Some(Reuse::Quarantined {
                    phase,
                    retries,
                    reason,
                }) => {
                    return CellVerdict::Quarantined {
                        phase: *phase,
                        reason: reason.clone(),
                        retries: *retries,
                    }
                }
                Some(Reuse::Complete) => {
                    // The plan seeded the donor; resolve through the
                    // certified donor path without lint/golden.
                    return match isolated(name, || {
                        self.cache.characterize(cell.clone(), self.options)
                    }) {
                        Ok(p) => CellVerdict::Model(Box::new(p)),
                        Err(err) => CellVerdict::Quarantined {
                            phase: FailurePhase::Prepare,
                            reason: err.to_string(),
                            retries: 0,
                        },
                    };
                }
                None => {}
            }
        }
        // 2. Memoized fresh verdicts (exact-identity key).
        {
            let memo = lock(&self.memo);
            match memo.get(&fp) {
                Some(Memo::Degraded(p)) => return CellVerdict::Model(p.clone()),
                Some(Memo::Quarantined {
                    phase,
                    reason,
                    retries,
                }) => {
                    return CellVerdict::Quarantined {
                        phase: *phase,
                        reason: reason.clone(),
                        retries: *retries,
                    }
                }
                None => {}
            }
        }
        // 3. Fresh guarded pipeline. (Complete models need no memo: the
        // donor cache serves structure-identical repeats.)
        self.fresh(cell, fp, deadline)
    }

    fn fresh(&self, cell: &Cell, fp: u64, deadline: Deadline) -> CellVerdict {
        let name = cell.name();
        let (eff, mut tightened) = clamp_to_deadline(&self.budget, deadline);
        let mut retries = 0u32;
        let mut outcome = characterize_cell_guarded(cell, self.options, &eff, &self.cache);
        // Reduced-budget retries, mirroring FaultPolicy::
        // RetryWithReducedBudget — but a wall-clock exhaustion whose
        // binding constraint was the *request deadline* is not a cell
        // problem and must not be diagnosed (or journaled) as one.
        while retries < self.max_retries {
            match &outcome {
                Err((_, CoreError::BudgetExceeded { resource, .. })) => {
                    if tightened && resource == "wall clock" {
                        return CellVerdict::DeadlineExceeded;
                    }
                    if deadline.expired() {
                        return CellVerdict::DeadlineExceeded;
                    }
                    retries += 1;
                    let reduced = reduced_budget(&self.budget, cell, retries);
                    let (eff, t) = clamp_to_deadline(&reduced, deadline);
                    tightened = t;
                    outcome = characterize_cell_guarded(cell, self.options, &eff, &self.cache);
                }
                _ => break,
            }
        }
        match outcome {
            Ok(p) => {
                let degraded = p.model.as_ref().is_some_and(|m| m.degraded);
                if degraded && tightened && retries == 0 && !truncating(&self.budget) {
                    // The deadline was the only cap that could have
                    // fired: the truncated model is not the configured
                    // answer. Withhold it; nothing journaled.
                    return CellVerdict::DeadlineExceeded;
                }
                // Journal under the *configured* budget — but only when
                // the deadline was not the binding wall constraint of
                // the final attempt, so the stored bytes are exactly
                // what a configured-budget run would produce.
                if !tightened && self.journal_allowed(name, fp) {
                    self.session.journal_model(&p, self.options, &self.budget);
                    if degraded {
                        // Mirror what a restart would plan from the
                        // store: degraded models replay to this exact
                        // cell (never as donors).
                        lock(&self.memo).insert(fp, Memo::Degraded(Box::new(p.clone())));
                    }
                }
                CellVerdict::Model(Box::new(p))
            }
            Err((phase, err)) => {
                if tightened
                    && matches!(&err, CoreError::BudgetExceeded { resource, .. } if resource == "wall clock")
                {
                    return CellVerdict::DeadlineExceeded;
                }
                let reason = err.to_string();
                if !tightened && self.journal_allowed(name, fp) {
                    self.session.journal_quarantine(
                        cell,
                        phase,
                        &reason,
                        retries,
                        self.options,
                        &self.budget,
                    );
                }
                lock(&self.memo).insert(
                    fp,
                    Memo::Quarantined {
                        phase,
                        reason: reason.clone(),
                        retries,
                    },
                );
                CellVerdict::Quarantined {
                    phase,
                    reason,
                    retries,
                }
            }
        }
    }

    /// Follower fast path for request coalescing: resolves `cell`
    /// through the certified donor cache without re-running lint or the
    /// golden simulation — the leader that just published the donor
    /// already did both on a structure-identical netlist, and the donor
    /// remap re-certifies equivalence per cell. Journals nothing (the
    /// leader's journal entry is the durable copy).
    pub fn coalesced_characterize(&self, cell: &Cell) -> CellVerdict {
        match isolated(cell.name(), || {
            self.cache.characterize(cell.clone(), self.options)
        }) {
            Ok(p) => CellVerdict::Model(Box::new(p)),
            Err(err) => CellVerdict::Quarantined {
                phase: FailurePhase::Prepare,
                reason: err.to_string(),
                retries: 0,
            },
        }
    }

    /// Whether a fresh outcome for `name` may be journaled: yes for
    /// library cells when the request matches the library netlist, yes
    /// for names the library does not own, no for same-name lookalikes
    /// (journaling one would clobber the library cell's record and force
    /// an eviction/re-simulation on the next restart).
    fn journal_allowed(&self, name: &str, fp: u64) -> bool {
        self.library_fp.get(name).is_none_or(|lib| *lib == fp)
    }
}

/// Effective budget for one attempt under `deadline`, plus whether the
/// deadline is the *binding* wall constraint (strictly tighter than the
/// attempt budget's own wall clock).
fn clamp_to_deadline(budget: &SimBudget, deadline: Deadline) -> (SimBudget, bool) {
    match deadline.remaining() {
        None => (*budget, false),
        Some(rem) => {
            let wall = match budget.wall_clock {
                Some(configured) if configured <= rem => Some(configured),
                _ => Some(rem),
            };
            let tightened = wall != budget.wall_clock;
            (
                SimBudget {
                    wall_clock: wall,
                    ..*budget
                },
                tightened,
            )
        }
    }
}

/// Whether a budget carries result-truncating caps (anything but a pure
/// wall clock).
fn truncating(budget: &SimBudget) -> bool {
    budget.max_stimuli.is_some()
        || budget.max_defects.is_some()
        || budget.max_solver_iterations.is_some()
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::{spice, Technology};
    use std::path::PathBuf;
    use std::time::Duration;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ca-service-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.caj"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn tiny_library() -> Library {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(4);
        lib
    }

    fn open_service(tag: &str, lib: &Library) -> CellService {
        CellService::open(
            tmp_store(tag),
            lib,
            GenerateOptions::default(),
            SimBudget::unlimited(),
            2,
        )
        .unwrap()
    }

    #[test]
    fn serves_and_journals_library_cells() {
        let lib = tiny_library();
        let service = open_service("serve", &lib);
        for lc in &lib.cells {
            match service.characterize_cell(&lc.cell, Deadline::never()) {
                CellVerdict::Model(p) => assert!(p.model.is_some()),
                other => panic!("{}: {other:?}", lc.cell.name()),
            }
        }
        assert_eq!(service.report().journaled, lib.len());
        // Snapshot reads see every journaled record.
        for lc in &lib.cells {
            match service.lookup(lc.cell.name()) {
                Some(StoredVerdict::Complete(cam)) => assert!(!cam.is_empty()),
                other => panic!("{}: {other:?}", lc.cell.name()),
            }
        }
        assert!(service.lookup("NO_SUCH_CELL").is_none());
    }

    #[test]
    fn reopened_service_reuses_without_journaling() {
        let lib = tiny_library();
        let store = tmp_store("reuse");
        let svc = CellService::open(
            &store,
            &lib,
            GenerateOptions::default(),
            SimBudget::unlimited(),
            2,
        )
        .unwrap();
        let mut first = Vec::new();
        for lc in &lib.cells {
            match svc.characterize_cell(&lc.cell, Deadline::never()) {
                CellVerdict::Model(p) => first.push(ca_defects::to_cam(p.model.as_ref().unwrap())),
                other => panic!("{other:?}"),
            }
        }
        drop(svc);
        let svc = CellService::open(
            &store,
            &lib,
            GenerateOptions::default(),
            SimBudget::unlimited(),
            2,
        )
        .unwrap();
        assert_eq!(svc.report().reused_complete, lib.len());
        for (lc, cam) in lib.cells.iter().zip(&first) {
            match svc.characterize_cell(&lc.cell, Deadline::never()) {
                CellVerdict::Model(p) => {
                    assert_eq!(&ca_defects::to_cam(p.model.as_ref().unwrap()), cam)
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(svc.report().journaled, 0, "reuse must not re-journal");
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn expired_deadline_is_rejected_without_work_or_journal() {
        let lib = tiny_library();
        let service = open_service("deadline", &lib);
        let verdict =
            service.characterize_cell(&lib.cells[0].cell, Deadline::after(Duration::ZERO));
        assert!(
            matches!(verdict, CellVerdict::DeadlineExceeded),
            "{verdict:?}"
        );
        assert_eq!(service.report().journaled, 0);
    }

    #[test]
    fn broken_cell_is_quarantined_and_memoized() {
        let lib = tiny_library();
        let service = open_service("quarantine", &lib);
        // A floating gate fails lint deterministically.
        let broken = spice::parse_cell(
            ".SUBCKT BROKEN A Z VDD VSS\nMP0 Z X VDD VDD pch\nMN0 Z X VSS VSS nch\n.ENDS",
        )
        .unwrap();
        let first = service.characterize_cell(&broken, Deadline::never());
        let CellVerdict::Quarantined { reason, .. } = first else {
            panic!("{first:?}");
        };
        // The second request replays the memoized verdict.
        let second = service.characterize_cell(&broken, Deadline::never());
        match second {
            CellVerdict::Quarantined { reason: r2, .. } => assert_eq!(r2, reason),
            other => panic!("{other:?}"),
        }
        // Journaled: a restarted service replays it from the store too.
        assert_eq!(service.report().journaled, 1);
    }

    #[test]
    fn lookalike_inline_cell_never_clobbers_a_library_record() {
        let lib = tiny_library();
        let service = open_service("lookalike", &lib);
        let name = lib.cells[0].cell.name().to_string();
        match service.characterize_cell(&lib.cells[0].cell, Deadline::never()) {
            CellVerdict::Model(_) => {}
            other => panic!("{other:?}"),
        }
        // An unrelated inline netlist that reuses a library cell name:
        // served, but never journaled over the library record.
        let lookalike = spice::parse_cell(&format!(
            ".SUBCKT {name} A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS"
        ))
        .unwrap();
        match service.characterize_cell(&lookalike, Deadline::never()) {
            CellVerdict::Model(p) => assert!(p.model.is_some()),
            other => panic!("{other:?}"),
        }
        assert_eq!(service.report().journaled, 1, "lookalike must not journal");
        match service.lookup(&name) {
            Some(StoredVerdict::Complete(_)) => {}
            other => panic!("library record clobbered: {other:?}"),
        }
    }

    #[test]
    fn clamp_to_deadline_tracks_the_binding_constraint() {
        let unlimited = SimBudget::unlimited();
        let (eff, tightened) = clamp_to_deadline(&unlimited, Deadline::never());
        assert_eq!(eff.wall_clock, None);
        assert!(!tightened);
        // Deadline binds an unlimited budget.
        let (eff, tightened) =
            clamp_to_deadline(&unlimited, Deadline::after(Duration::from_secs(5)));
        assert!(tightened);
        assert!(eff.wall_clock.unwrap() <= Duration::from_secs(5));
        // A tighter configured wall clock keeps binding.
        let capped = SimBudget {
            wall_clock: Some(Duration::from_millis(1)),
            ..SimBudget::unlimited()
        };
        let (eff, tightened) =
            clamp_to_deadline(&capped, Deadline::after(Duration::from_secs(3600)));
        assert_eq!(eff.wall_clock, Some(Duration::from_millis(1)));
        assert!(!tightened);
    }
}
