//! Library-level characterization driver.
//!
//! Wraps the per-cell flows into the batch operation an EDA user actually
//! runs: characterize (or predict) a whole standard-cell library, collect
//! summary statistics, and export the models as `.cam` documents.

// Library-batch code runs unattended for hours; a stray unwrap here
// aborts a whole characterization run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cache::CharCache;
use crate::cost::CostModel;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use crate::session::{Reuse, Session};
use ca_defects::{to_cam, Behavior, GenerateOptions};
use ca_exec::Executor;
use ca_netlist::library::Library;
use ca_sim::SimBudget;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Summary of a characterized library.
#[derive(Debug, Clone, PartialEq)]
pub struct LibrarySummary {
    /// Library technology name.
    pub technology: String,
    /// Number of cells characterized.
    pub num_cells: usize,
    /// Total defects across all cells.
    pub total_defects: usize,
    /// Total defect simulations run.
    pub total_simulations: usize,
    /// Classes by behaviour: `(static, dynamic, undetectable)`.
    pub behavior_totals: (usize, usize, usize),
    /// Mean defect coverage over the cells that carry a model (cells
    /// without one — e.g. prepare-only corpora — do not dilute the mean).
    pub mean_coverage: f64,
    /// Cells whose model was produced under a reduced budget.
    pub degraded: usize,
    /// Cells a robust run quarantined (0 for plain characterization).
    pub quarantined: usize,
    /// Estimated single-license SPICE time for the same work, seconds
    /// (from the calibrated cost model).
    pub estimated_spice_s: f64,
    /// Cells per (inputs, transistors) group.
    pub group_sizes: BTreeMap<(usize, usize), usize>,
}

impl LibrarySummary {
    /// Renders a compact text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "library {} — {} cells",
            self.technology, self.num_cells
        );
        let _ = writeln!(
            out,
            "  defects {}   simulations {}   mean coverage {:.1}%",
            self.total_defects,
            self.total_simulations,
            self.mean_coverage * 100.0
        );
        let (s, d, u) = self.behavior_totals;
        let _ = writeln!(out, "  classes: {s} static, {d} dynamic, {u} undetectable");
        if self.degraded > 0 || self.quarantined > 0 {
            let _ = writeln!(
                out,
                "  robustness: {} degraded, {} quarantined",
                self.degraded, self.quarantined
            );
        }
        let _ = writeln!(
            out,
            "  estimated SPICE effort: {}",
            crate::cost::format_duration(self.estimated_spice_s)
        );
        let _ = writeln!(out, "  groups (inputs, transistors) -> cells:");
        for (key, n) in &self.group_sizes {
            let _ = writeln!(out, "    {key:?} -> {n}");
        }
        out
    }
}

/// Characterizes every cell of `library` with the conventional flow,
/// using the [`CA_THREADS`](Executor::from_env)-sized executor and a
/// fresh structure-keyed [`CharCache`].
///
/// # Errors
///
/// Propagates the first (in library order) invalid-netlist error.
pub fn characterize_library(
    library: &Library,
    options: GenerateOptions,
) -> Result<(Vec<PreparedCell>, LibrarySummary), CoreError> {
    characterize_library_with(library, options, &Executor::from_env(), &CharCache::new())
}

/// [`characterize_library`] with explicit executor and cache, for callers
/// that pin the thread count or reuse a cache across batches.
///
/// Results are in library order regardless of scheduling; on failure the
/// error of the *first* failing cell in library order is returned, so the
/// outcome is identical at every thread count.
///
/// # Errors
///
/// Propagates the first (in library order) invalid-netlist error.
pub fn characterize_library_with(
    library: &Library,
    options: GenerateOptions,
    executor: &Executor,
    cache: &CharCache,
) -> Result<(Vec<PreparedCell>, LibrarySummary), CoreError> {
    charlib_driver(library, options, executor, cache, None)
}

/// [`characterize_library_with`] bound to a durable [`Session`]: cells
/// journaled by a previous (possibly killed) run are verified against the
/// incoming library and served from the on-disk store instead of being
/// re-simulated, and every freshly characterized cell is journaled as it
/// lands. A run interrupted at any point can be re-invoked with the same
/// arguments and converges to byte-identical models.
///
/// # Errors
///
/// Propagates the first (in library order) invalid-netlist error.
pub fn characterize_library_with_session(
    library: &Library,
    options: GenerateOptions,
    executor: &Executor,
    cache: &CharCache,
    session: &Session,
) -> Result<(Vec<PreparedCell>, LibrarySummary), CoreError> {
    charlib_driver(library, options, executor, cache, Some(session))
}

fn charlib_driver(
    library: &Library,
    options: GenerateOptions,
    executor: &Executor,
    cache: &CharCache,
    session: Option<&Session>,
) -> Result<(Vec<PreparedCell>, LibrarySummary), CoreError> {
    // The plain flow always runs unbudgeted; quarantine verdicts are a
    // robust-flow concept and are never replayed here.
    let budget = SimBudget::unlimited();
    let plan = session
        .map(|s| s.plan(library, options, &budget, cache, false))
        .unwrap_or_default();
    let results = executor.map(&library.cells, |_, lc| {
        match plan.reuse(lc.cell.name()) {
            // Store-verified degraded model, served back to this exact
            // cell only (never-a-donor rule).
            Some(Reuse::Degraded(p)) => Ok(p.clone()),
            // Store-verified complete model: the session pre-seeded the
            // cache, so this is a certified donor hit, no simulation.
            Some(Reuse::Complete) => cache.characterize(lc.cell.clone(), options).map(Box::new),
            _ => {
                let result = cache.characterize(lc.cell.clone(), options);
                if let (Some(s), Ok(p)) = (session, &result) {
                    s.journal_model(p, options, &budget);
                }
                result.map(Box::new)
            }
        }
    });
    let mut prepared = Vec::with_capacity(results.len());
    for result in results {
        prepared.push(*result?);
    }
    if let Some(s) = session {
        s.maybe_compact();
    }
    let summary = summarize(library.technology.name(), &prepared);
    Ok((prepared, summary))
}

/// Builds the summary over already-characterized cells.
pub fn summarize(technology: &str, prepared: &[PreparedCell]) -> LibrarySummary {
    let cost = CostModel::paper_calibrated();
    let mut total_defects = 0;
    let mut total_simulations = 0;
    let mut behavior_totals = (0, 0, 0);
    let mut coverage_sum = 0.0;
    let mut cells_with_model = 0usize;
    let mut degraded = 0usize;
    let mut estimated_spice_s = 0.0;
    let mut group_sizes: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for p in prepared {
        *group_sizes.entry(p.group_key()).or_default() += 1;
        estimated_spice_s += cost.simulation_time_s(&p.cell);
        if let Some(model) = &p.model {
            total_defects += model.universe.len();
            total_simulations += model.defect_simulations;
            coverage_sum += model.coverage();
            cells_with_model += 1;
            degraded += usize::from(model.degraded);
            for class in &model.classes {
                match class.behavior {
                    Behavior::Static => behavior_totals.0 += 1,
                    Behavior::Dynamic => behavior_totals.1 += 1,
                    Behavior::Undetectable => behavior_totals.2 += 1,
                }
            }
        }
    }
    LibrarySummary {
        technology: technology.to_string(),
        num_cells: prepared.len(),
        total_defects,
        total_simulations,
        behavior_totals,
        // Average over the cells that actually have a model: dividing by
        // the full cell count silently under-reports coverage as soon as
        // any cell is prepare-only or quarantined.
        mean_coverage: if cells_with_model == 0 {
            0.0
        } else {
            coverage_sum / cells_with_model as f64
        },
        degraded,
        quarantined: 0,
        estimated_spice_s,
        group_sizes,
    }
}

/// Exports every characterized cell as a `.cam` document, returning
/// `(file name, contents)` pairs (the caller decides where to write).
///
/// Models produced under a reduced budget
/// ([degraded](ca_defects::CaModel::degraded)) are skipped: an ATPG
/// consumer cannot tell an incomplete dictionary from a complete one.
/// Use [`export_cam_with`] to opt them in.
pub fn export_cam(prepared: &[PreparedCell]) -> Vec<(String, String)> {
    export_cam_with(prepared, false)
}

/// Like [`export_cam`], optionally including degraded models (they are
/// still marked with the `degraded` directive inside the document).
pub fn export_cam_with(prepared: &[PreparedCell], include_degraded: bool) -> Vec<(String, String)> {
    prepared
        .iter()
        .filter_map(|p| {
            p.model
                .as_ref()
                .filter(|m| include_degraded || !m.degraded)
                .map(|m| (format!("{}.cam", p.cell.name()), to_cam(m)))
        })
        .collect()
}

/// Writes every `.cam` document of [`export_cam_with`] into `dir`
/// (created if missing), returning the written paths in library order.
///
/// Each file lands via [`ca_store::write_atomic`] — tmp file, fsync,
/// rename — so a crash mid-export leaves either the previous version or
/// the complete new one, never a torn `.cam`.
///
/// # Errors
///
/// [`CoreError::Storage`] naming the file that failed.
pub fn export_cam_to_dir(
    prepared: &[PreparedCell],
    dir: impl AsRef<Path>,
    include_degraded: bool,
) -> Result<Vec<PathBuf>, CoreError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| CoreError::Storage {
        path: dir.display().to_string(),
        source: e.to_string(),
    })?;
    let mut paths = Vec::new();
    for (name, text) in export_cam_with(prepared, include_degraded) {
        let path = dir.join(name);
        ca_store::write_atomic(&path, text.as_bytes()).map_err(|e| CoreError::Storage {
            path: path.display().to_string(),
            source: e.to_string(),
        })?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_defects::from_cam;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;

    fn tiny_library() -> Library {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(6);
        lib
    }

    #[test]
    fn characterize_and_summarize() {
        let lib = tiny_library();
        let (prepared, summary) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        assert_eq!(prepared.len(), 6);
        assert_eq!(summary.num_cells, 6);
        assert!(summary.total_defects > 0);
        assert!(summary.total_simulations > 0);
        assert!(summary.mean_coverage > 0.4);
        assert!(summary.estimated_spice_s > 0.0);
        assert!(!summary.group_sizes.is_empty());
        let text = summary.render();
        assert!(text.contains("C40"));
        assert!(text.contains("classes:"));
    }

    #[test]
    fn mean_coverage_ignores_model_less_cells() {
        let lib = tiny_library();
        let (mut prepared, full) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        // Strip the models of half the cells: the mean over the rest
        // must not change (the old code divided by the total count).
        for p in prepared.iter_mut().skip(3) {
            p.model = None;
        }
        let partial = summarize("C40", &prepared);
        let expected = prepared
            .iter()
            .filter_map(|p| p.model.as_ref())
            .map(|m| m.coverage())
            .sum::<f64>()
            / 3.0;
        assert!((partial.mean_coverage - expected).abs() < 1e-12);
        assert!(partial.mean_coverage > 0.0);
        // Sanity: the full summary used every cell.
        assert!(full.mean_coverage > 0.4);
    }

    #[test]
    fn export_skips_degraded_models_unless_opted_in() {
        use ca_sim::SimBudget;
        let lib = tiny_library();
        let (mut prepared, _) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        // Re-characterize one cell under a truncating budget.
        let budget = SimBudget {
            max_defects: Some(4),
            ..SimBudget::unlimited()
        };
        prepared[0] = crate::matrix::PreparedCell::characterize_budgeted(
            lib.cells[0].cell.clone(),
            GenerateOptions::default(),
            &budget,
        )
        .unwrap();
        assert!(prepared[0].model.as_ref().unwrap().degraded);
        let summary = summarize("C40", &prepared);
        assert_eq!(summary.degraded, 1);
        assert_eq!(export_cam(&prepared).len(), prepared.len() - 1);
        let full = export_cam_with(&prepared, true);
        assert_eq!(full.len(), prepared.len());
        assert!(full.iter().any(|(name, text)| name
            == &format!("{}.cam", lib.cells[0].cell.name())
            && text.contains("degraded")));
    }

    #[test]
    fn parallel_and_cached_runs_match_the_serial_cold_run() {
        let lib = tiny_library();
        let options = GenerateOptions::default();
        let cold: Vec<PreparedCell> = lib
            .cells
            .iter()
            .map(|lc| PreparedCell::characterize(lc.cell.clone(), options).unwrap())
            .collect();
        for threads in [1, 4] {
            let cache = CharCache::new();
            let (prepared, summary) =
                characterize_library_with(&lib, options, &Executor::with_threads(threads), &cache)
                    .unwrap();
            assert_eq!(prepared.len(), cold.len());
            for (p, c) in prepared.iter().zip(&cold) {
                assert_eq!(p.cell.name(), c.cell.name(), "order must be library order");
                assert_eq!(p.model, c.model, "{}: cached model differs", p.cell.name());
            }
            assert_eq!(summary, summarize(lib.technology.name(), &cold));
            let stats = cache.stats();
            assert_eq!(stats.hits + stats.misses, lib.len(), "{stats:?}");
        }
    }

    #[test]
    fn cam_export_round_trips() {
        let lib = tiny_library();
        let (prepared, _) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        let exported = export_cam(&prepared);
        assert_eq!(exported.len(), 6);
        for (p, (name, text)) in prepared.iter().zip(&exported) {
            assert!(name.ends_with(".cam"));
            let parsed = from_cam(text, &p.cell).unwrap();
            assert_eq!(&parsed, p.model.as_ref().unwrap());
        }
    }
}
