//! Library-level characterization driver.
//!
//! Wraps the per-cell flows into the batch operation an EDA user actually
//! runs: characterize (or predict) a whole standard-cell library, collect
//! summary statistics, and export the models as `.cam` documents.

use crate::cost::CostModel;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use ca_defects::{to_cam, Behavior, GenerateOptions};
use ca_netlist::library::Library;
use std::collections::BTreeMap;

/// Summary of a characterized library.
#[derive(Debug, Clone, PartialEq)]
pub struct LibrarySummary {
    /// Library technology name.
    pub technology: String,
    /// Number of cells characterized.
    pub num_cells: usize,
    /// Total defects across all cells.
    pub total_defects: usize,
    /// Total defect simulations run.
    pub total_simulations: usize,
    /// Classes by behaviour: `(static, dynamic, undetectable)`.
    pub behavior_totals: (usize, usize, usize),
    /// Mean per-cell defect coverage.
    pub mean_coverage: f64,
    /// Estimated single-license SPICE time for the same work, seconds
    /// (from the calibrated cost model).
    pub estimated_spice_s: f64,
    /// Cells per (inputs, transistors) group.
    pub group_sizes: BTreeMap<(usize, usize), usize>,
}

impl LibrarySummary {
    /// Renders a compact text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "library {} — {} cells", self.technology, self.num_cells);
        let _ = writeln!(
            out,
            "  defects {}   simulations {}   mean coverage {:.1}%",
            self.total_defects,
            self.total_simulations,
            self.mean_coverage * 100.0
        );
        let (s, d, u) = self.behavior_totals;
        let _ = writeln!(out, "  classes: {s} static, {d} dynamic, {u} undetectable");
        let _ = writeln!(
            out,
            "  estimated SPICE effort: {}",
            crate::cost::format_duration(self.estimated_spice_s)
        );
        let _ = writeln!(out, "  groups (inputs, transistors) -> cells:");
        for (key, n) in &self.group_sizes {
            let _ = writeln!(out, "    {key:?} -> {n}");
        }
        out
    }
}

/// Characterizes every cell of `library` with the conventional flow.
///
/// # Errors
///
/// Propagates the first invalid-netlist error.
pub fn characterize_library(
    library: &Library,
    options: GenerateOptions,
) -> Result<(Vec<PreparedCell>, LibrarySummary), CoreError> {
    let mut prepared = Vec::with_capacity(library.len());
    for lc in &library.cells {
        prepared.push(PreparedCell::characterize(lc.cell.clone(), options)?);
    }
    let summary = summarize(library.technology.name(), &prepared);
    Ok((prepared, summary))
}

/// Builds the summary over already-characterized cells.
pub fn summarize(technology: &str, prepared: &[PreparedCell]) -> LibrarySummary {
    let cost = CostModel::paper_calibrated();
    let mut total_defects = 0;
    let mut total_simulations = 0;
    let mut behavior_totals = (0, 0, 0);
    let mut coverage_sum = 0.0;
    let mut estimated_spice_s = 0.0;
    let mut group_sizes: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for p in prepared {
        *group_sizes.entry(p.group_key()).or_default() += 1;
        estimated_spice_s += cost.simulation_time_s(&p.cell);
        if let Some(model) = &p.model {
            total_defects += model.universe.len();
            total_simulations += model.defect_simulations;
            coverage_sum += model.coverage();
            for class in &model.classes {
                match class.behavior {
                    Behavior::Static => behavior_totals.0 += 1,
                    Behavior::Dynamic => behavior_totals.1 += 1,
                    Behavior::Undetectable => behavior_totals.2 += 1,
                }
            }
        }
    }
    LibrarySummary {
        technology: technology.to_string(),
        num_cells: prepared.len(),
        total_defects,
        total_simulations,
        behavior_totals,
        mean_coverage: if prepared.is_empty() {
            0.0
        } else {
            coverage_sum / prepared.len() as f64
        },
        estimated_spice_s,
        group_sizes,
    }
}

/// Exports every characterized cell as a `.cam` document, returning
/// `(file name, contents)` pairs (the caller decides where to write).
pub fn export_cam(prepared: &[PreparedCell]) -> Vec<(String, String)> {
    prepared
        .iter()
        .filter_map(|p| {
            p.model
                .as_ref()
                .map(|m| (format!("{}.cam", p.cell.name()), to_cam(m)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_defects::from_cam;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;

    fn tiny_library() -> Library {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(6);
        lib
    }

    #[test]
    fn characterize_and_summarize() {
        let lib = tiny_library();
        let (prepared, summary) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        assert_eq!(prepared.len(), 6);
        assert_eq!(summary.num_cells, 6);
        assert!(summary.total_defects > 0);
        assert!(summary.total_simulations > 0);
        assert!(summary.mean_coverage > 0.4);
        assert!(summary.estimated_spice_s > 0.0);
        assert!(!summary.group_sizes.is_empty());
        let text = summary.render();
        assert!(text.contains("C40"));
        assert!(text.contains("classes:"));
    }

    #[test]
    fn cam_export_round_trips() {
        let lib = tiny_library();
        let (prepared, _) = characterize_library(&lib, GenerateOptions::default()).unwrap();
        let exported = export_cam(&prepared);
        assert_eq!(exported.len(), 6);
        for (p, (name, text)) in prepared.iter().zip(&exported) {
            assert!(name.ends_with(".cam"));
            let parsed = from_cam(text, &p.cell).unwrap();
            assert_eq!(&parsed, p.model.as_ref().unwrap());
        }
    }
}
