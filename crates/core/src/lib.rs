//! The paper's contribution: CA-matrix canonical encoding, structural
//! analysis and the conventional / ML / hybrid CA model generation flows.
//!
//! Pipeline (paper Fig. 2 / Fig. 3):
//!
//! 1. [`Activation`] — one golden simulation per stimulus: output waves,
//!    per-transistor activity waves, activity values (§III.A, §III.C).
//! 2. [`CanonicalCell`] — branch extraction, series-parallel branch
//!    equations, anonymization, deterministic transistor renaming
//!    (§III.B), structure hashes for the hybrid gate (§V.B).
//! 3. [`PreparedCell`] / [`matrix::MatrixLayout`] — the CA-matrix feature
//!    encoding of ⟨stimulus, defect⟩ rows (Table I, §IV).
//! 4. [`MlFlow`] — per-(inputs, transistors) random forests trained on
//!    existing CA models, predicting models for new cells (Fig. 2).
//! 5. [`HybridFlow`] — the structural gate routing each new cell to ML or
//!    to conventional simulation, with reinforcement feedback (Fig. 7)
//!    and the calibrated generation-time [`CostModel`] (§V.C).
//!
//! # Example: predict a CA model instead of simulating it
//!
//! ```
//! use ca_core::{MlFlow, MlFlowParams, PreparedCell};
//! use ca_defects::GenerateOptions;
//! use ca_netlist::{generate_library, LibraryConfig, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Characterize a few training cells the conventional way...
//! let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
//! let corpus: Vec<PreparedCell> = lib
//!     .cells
//!     .iter()
//!     .take(6)
//!     .map(|lc| PreparedCell::characterize(lc.cell.clone(), GenerateOptions::default()))
//!     .collect::<Result<_, _>>()?;
//! // ...train the ML flow and predict one of them.
//! let flow = MlFlow::train(&corpus, MlFlowParams::quick())?;
//! let predicted = flow.predict(&corpus[0])?;
//! assert!(corpus[0].accuracy_of(&predicted) > 0.9);
//! # Ok(())
//! # }
//! ```

pub mod activation;
pub mod cache;
pub mod canonical;
pub mod charlib;
pub mod cost;
pub mod error;
pub mod flow;
pub mod matrix;
pub mod robust;
pub mod service;
pub mod session;

pub use activation::{Activation, ActivityValue};
pub use ca_exec::{panic_message, BadThreadsVar, Executor};
pub use cache::{CacheStats, CharCache};
pub use canonical::{Branch, CanonicalCell, SpTree};
pub use charlib::{
    characterize_library, characterize_library_with, characterize_library_with_session, export_cam,
    export_cam_to_dir, export_cam_with, summarize, LibrarySummary,
};
pub use cost::{format_duration, CostModel};
pub use error::CoreError;
pub use flow::{
    conventional_flow, train_group_forest, CellOutcome, HybridFlow, HybridOptions, HybridReport,
    MlFlow, MlFlowParams, Route, StructuralMatch, StructureIndex,
};
pub use matrix::{MatrixLayout, PreparedCell};
pub use robust::{
    characterize_library_robust, characterize_library_robust_with,
    characterize_library_robust_with_session, FailurePhase, FaultPolicy, Quarantine,
    QuarantineEntry, RobustOutcome,
};
pub use service::{CellService, CellVerdict, StoredVerdict};
pub use session::{cell_fingerprint, take_journal_ns, Session, SessionReport};
