//! Fault-tolerant library characterization: per-cell isolation, solver
//! budgets, and quarantine reports.
//!
//! [`characterize_library`](crate::charlib::characterize_library) aborts
//! the whole batch on the first broken cell. Real libraries contain
//! damage — hand-edited netlists, extraction artifacts, unintended
//! feedback loops — and a nightly characterization run must degrade per
//! cell, not per library. [`characterize_library_robust`] runs every
//! cell through a guarded pipeline:
//!
//! 1. **Lint** — structural pre-flight ([`ca_netlist::lint`]); any
//!    error-level finding quarantines the cell before a single
//!    simulation is spent.
//! 2. **Golden** — the defect-free cell is simulated with oscillation
//!    detection ([`Simulator::try_run`]); divergence becomes
//!    [`CoreError::SolverDiverged`] instead of silent X-forcing.
//! 3. **Prepare + Characterize** — canonicalization and budgeted model
//!    generation, wrapped in [`std::panic::catch_unwind`] so even a
//!    panicking cell only loses itself.
//!
//! Failures are collected into a [`Quarantine`] report; the
//! [`FaultPolicy`] decides whether to abort, skip, or retry with a
//! reduced budget (halved defect universe, static-only stimuli) so a
//! partially characterized — *degraded* — model still exports.

// This module exists to keep broken cells from taking down a batch;
// it must not itself abort on a stray unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cache::CharCache;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use crate::session::{Reuse, Session};
use ca_defects::GenerateOptions;
use ca_exec::Executor;
use ca_netlist::library::Library;
use ca_netlist::lint::{lint, Severity};
use ca_netlist::Cell;
use ca_obs::Stopwatch;
use ca_sim::{Injection, SimBudget, SimError, Simulator, Stimulus};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// What to do when a cell fails characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Abort the batch on the first failure (legacy behaviour).
    FailFast,
    /// Quarantine the cell and continue with the rest of the library.
    SkipAndReport,
    /// Like `SkipAndReport`, but budget-exhausted cells are retried up
    /// to `n` times with a progressively reduced budget: the defect
    /// universe is halved per attempt, stimuli are truncated to the
    /// statics, and the wall-clock/iteration limits are lifted. A retry
    /// that succeeds yields a [degraded](ca_defects::CaModel::degraded)
    /// model.
    RetryWithReducedBudget(u32),
}

/// Pipeline stage at which a quarantined cell failed. The discriminant
/// is persisted in the session journal (see `session::encode_phase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailurePhase {
    /// Structural lint pre-flight (journal wire v1 tag 0).
    Lint,
    /// Defect-free (golden) sanity simulation (journal wire v1 tag 1).
    Golden,
    /// Activation extraction / canonicalization (journal wire v1 tag 2).
    Prepare,
    /// Budgeted model generation (journal wire v1 tag 3).
    Characterize,
}

impl fmt::Display for FailurePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePhase::Lint => write!(f, "lint"),
            FailurePhase::Golden => write!(f, "golden"),
            FailurePhase::Prepare => write!(f, "prepare"),
            FailurePhase::Characterize => write!(f, "characterize"),
        }
    }
}

/// One quarantined cell.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Cell name.
    pub cell: String,
    /// Stage that failed (after any retries).
    pub phase: FailurePhase,
    /// Human-readable failure reason.
    pub reason: String,
    /// Wall-clock time spent on the cell, retries included.
    pub elapsed: Duration,
    /// Number of reduced-budget retries that were attempted.
    pub retries: u32,
}

/// Report of every cell a robust run could not characterize.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    /// Entries in library order.
    pub entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    /// Number of quarantined cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every cell characterized cleanly.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `cell`, if it was quarantined.
    pub fn entry(&self, cell: &str) -> Option<&QuarantineEntry> {
        self.entries.iter().find(|e| e.cell == cell)
    }

    /// Renders a compact text report, one line per cell.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "quarantine: {} cell(s)", self.len());
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {} [{}] {} ({} ms, {} retries)",
                e.cell,
                e.phase,
                e.reason,
                e.elapsed.as_millis(),
                e.retries
            );
        }
        out
    }
}

/// Result of [`characterize_library_robust`].
#[derive(Debug)]
pub struct RobustOutcome {
    /// Successfully characterized cells (possibly with degraded models).
    pub prepared: Vec<PreparedCell>,
    /// Cells that failed, with per-cell diagnosis.
    pub quarantine: Quarantine,
}

impl RobustOutcome {
    /// Cells whose model was produced under a reduced budget.
    pub fn degraded_count(&self) -> usize {
        self.prepared
            .iter()
            .filter(|p| p.model.as_ref().is_some_and(|m| m.degraded))
            .count()
    }
}

/// Characterizes every cell of `library` under `budget`, isolating
/// per-cell failures according to `policy`.
///
/// The invariant callers rely on: `prepared.len() + quarantine.len() ==
/// library.len()` (under [`FaultPolicy::SkipAndReport`] and
/// [`FaultPolicy::RetryWithReducedBudget`]).
///
/// # Errors
///
/// Only [`FaultPolicy::FailFast`] returns an error — the first per-cell
/// failure, like [`characterize_library`](crate::characterize_library).
pub fn characterize_library_robust(
    library: &Library,
    options: GenerateOptions,
    budget: &SimBudget,
    policy: FaultPolicy,
) -> Result<RobustOutcome, CoreError> {
    characterize_library_robust_with(
        library,
        options,
        budget,
        policy,
        &Executor::from_env(),
        &CharCache::new(),
    )
}

/// [`characterize_library_robust`] with explicit executor and cache.
///
/// The outcome is deterministic in everything but per-entry `elapsed`
/// times: `prepared` and `quarantine.entries` are in library order, and
/// under [`FaultPolicy::FailFast`] the error of the *first* failing cell
/// in library order is returned — identical at every thread count.
///
/// # Errors
///
/// Only [`FaultPolicy::FailFast`] returns an error — the first per-cell
/// failure, like [`characterize_library`](crate::characterize_library).
pub fn characterize_library_robust_with(
    library: &Library,
    options: GenerateOptions,
    budget: &SimBudget,
    policy: FaultPolicy,
    executor: &Executor,
    cache: &CharCache,
) -> Result<RobustOutcome, CoreError> {
    robust_driver(library, options, budget, policy, executor, cache, None)
}

/// [`characterize_library_robust_with`] bound to a durable [`Session`]:
/// previously journaled cells (complete, degraded *and* — except under
/// [`FaultPolicy::FailFast`] — quarantined) are verified against the
/// incoming library and reused instead of re-simulated, and every fresh
/// outcome is journaled as it lands. A run killed at any point can be
/// re-invoked with the same arguments and converges to the uninterrupted
/// run's models and quarantine verdicts (per-entry `elapsed` aside).
///
/// # Errors
///
/// Only [`FaultPolicy::FailFast`] returns an error — the first per-cell
/// failure, like [`characterize_library`](crate::characterize_library).
pub fn characterize_library_robust_with_session(
    library: &Library,
    options: GenerateOptions,
    budget: &SimBudget,
    policy: FaultPolicy,
    executor: &Executor,
    cache: &CharCache,
    session: &Session,
) -> Result<RobustOutcome, CoreError> {
    robust_driver(
        library,
        options,
        budget,
        policy,
        executor,
        cache,
        Some(session),
    )
}

/// Per-cell scheduling outcome of the robust driver.
enum Item {
    /// A model landed (fresh, cache-served or store-served).
    Done(Box<PreparedCell>),
    /// The guarded pipeline failed this run.
    Fail(FailurePhase, CoreError, Duration, u32),
    /// A journaled quarantine verdict replayed from the session store.
    Replay(FailurePhase, String, u32),
}

fn robust_driver(
    library: &Library,
    options: GenerateOptions,
    budget: &SimBudget,
    policy: FaultPolicy,
    executor: &Executor,
    cache: &CharCache,
    session: Option<&Session>,
) -> Result<RobustOutcome, CoreError> {
    // Quarantine verdicts are replayed as their stored reason string; a
    // fail-fast run must surface the original `CoreError` value, which a
    // string cannot reconstruct, so it re-diagnoses instead.
    let plan = session
        .map(|s| {
            s.plan(
                library,
                options,
                budget,
                cache,
                policy != FaultPolicy::FailFast,
            )
        })
        .unwrap_or_default();
    // Each item runs the full guarded pipeline, retries included; the
    // fold below never simulates, so the merge stays in library order.
    let results = executor.map(&library.cells, |_, lc| {
        // One trace span per session cell, named after the cell. The
        // executor adopted a per-item fork of the caller's context, so
        // the id is a pure function of campaign + item — identical at
        // any CA_THREADS and across a crash-resume (DESIGN.md §14).
        let _cell_span = ca_obs::trace::span(lc.cell.name());
        let started = Stopwatch::start();
        match plan.reuse(lc.cell.name()) {
            // Store-verified degraded model: served back to this exact
            // cell (never through the cache — never-a-donor rule).
            Some(Reuse::Degraded(p)) => Item::Done(p.clone()),
            // Store-verified complete model: the session pre-seeded the
            // cache, so this resolves through the certified donor path
            // without lint/golden/simulation.
            Some(Reuse::Complete) => {
                let name = lc.cell.name().to_string();
                match isolated(&name, || cache.characterize(lc.cell.clone(), options)) {
                    Ok(p) => Item::Done(Box::new(p)),
                    Err(err) => Item::Fail(FailurePhase::Prepare, err, started.elapsed(), 0),
                }
            }
            Some(Reuse::Quarantined {
                phase,
                retries,
                reason,
            }) => Item::Replay(*phase, reason.clone(), *retries),
            None => {
                let mut retries = 0u32;
                let mut outcome = characterize_cell_guarded(&lc.cell, options, budget, cache);
                if let FaultPolicy::RetryWithReducedBudget(max_retries) = policy {
                    while retries < max_retries {
                        match &outcome {
                            Err((_, CoreError::BudgetExceeded { .. })) => {
                                retries += 1;
                                let reduced = reduced_budget(budget, &lc.cell, retries);
                                outcome =
                                    characterize_cell_guarded(&lc.cell, options, &reduced, cache);
                            }
                            _ => break,
                        }
                    }
                }
                match outcome {
                    Ok(p) => {
                        // Journal under the *configured* budget (not the
                        // reduced retry budget): a resumed run under the
                        // same arguments must find the record.
                        if let Some(s) = session {
                            s.journal_model(&p, options, budget);
                        }
                        Item::Done(Box::new(p))
                    }
                    Err((phase, err)) => {
                        if policy != FaultPolicy::FailFast {
                            if let Some(s) = session {
                                s.journal_quarantine(
                                    &lc.cell,
                                    phase,
                                    &err.to_string(),
                                    retries,
                                    options,
                                    budget,
                                );
                            }
                        }
                        Item::Fail(phase, err, started.elapsed(), retries)
                    }
                }
            }
        }
    });
    let mut prepared = Vec::with_capacity(library.len());
    let mut quarantine = Quarantine::default();
    // The merge runs on one thread in library order, so these totals are
    // `Outcome` class: they describe the converged result of the run and
    // hold across thread counts *and* crash-resume (a replayed verdict
    // counts exactly like the fresh diagnosis it replaces).
    ca_obs::counter!("ca_core.flow.cells", Outcome).add(library.len() as u64);
    for (lc, item) in library.cells.iter().zip(results) {
        match item {
            Item::Done(p) => {
                if p.model.as_ref().is_some_and(|m| m.degraded) {
                    ca_obs::counter!("ca_core.flow.models_degraded", Outcome).inc();
                } else {
                    ca_obs::counter!("ca_core.flow.models_complete", Outcome).inc();
                }
                prepared.push(*p);
            }
            Item::Fail(phase, err, elapsed, retries) => {
                if policy == FaultPolicy::FailFast {
                    return Err(err);
                }
                ca_obs::counter!("ca_core.flow.quarantined", Outcome).inc();
                ca_obs::counter!("ca_core.flow.retries", Work).add(u64::from(retries));
                quarantine.entries.push(QuarantineEntry {
                    cell: lc.cell.name().to_string(),
                    phase,
                    reason: err.to_string(),
                    elapsed,
                    retries,
                });
            }
            Item::Replay(phase, reason, retries) => {
                ca_obs::counter!("ca_core.flow.quarantined", Outcome).inc();
                quarantine.entries.push(QuarantineEntry {
                    cell: lc.cell.name().to_string(),
                    phase,
                    reason,
                    elapsed: Duration::ZERO,
                    retries,
                });
            }
        }
    }
    if let Some(s) = session {
        s.maybe_compact();
    }
    Ok(RobustOutcome {
        prepared,
        quarantine,
    })
}

/// The budget of retry `attempt` (1-based): truncate the defect universe
/// by half per attempt, keep only the static stimuli, and lift the
/// wall-clock/iteration limits so the reduced work can finish.
pub(crate) fn reduced_budget(budget: &SimBudget, cell: &Cell, attempt: u32) -> SimBudget {
    let full_universe = cell.num_transistors() * 6;
    let ceiling = budget
        .max_defects
        .map_or(full_universe, |d| d.min(full_universe));
    SimBudget {
        max_solver_iterations: None,
        max_stimuli: Some(1usize << cell.num_inputs()),
        max_defects: Some((ceiling >> attempt).max(1)),
        wall_clock: None,
    }
}

/// Runs one cell through lint → golden → prepare/characterize, tagging
/// any failure with the phase it happened in.
pub(crate) fn characterize_cell_guarded(
    cell: &Cell,
    options: GenerateOptions,
    budget: &SimBudget,
    cache: &CharCache,
) -> Result<PreparedCell, (FailurePhase, CoreError)> {
    let name = cell.name().to_string();
    // 1. Structural pre-flight: quarantine broken netlists before any
    // simulation effort is spent on them.
    if let Some(finding) = lint(cell)
        .into_iter()
        .find(|f| f.severity == Severity::Error)
    {
        ca_obs::counter!("ca_core.flow.lint_rejects", Work).inc();
        return Err((
            FailurePhase::Lint,
            CoreError::PrepareFailed {
                cell: name,
                source: finding.to_string(),
            },
        ));
    }
    // 2. Golden sanity: the defect-free cell must converge under every
    // stimulus. `try_run` surfaces oscillation and iteration exhaustion
    // that `run` would silently X-force.
    let sim = Simulator::with_budget(cell, Injection::None, budget);
    let clock = budget.start();
    for stimulus in Stimulus::all(cell.num_inputs()) {
        if clock.expired() {
            return Err((
                FailurePhase::Golden,
                CoreError::BudgetExceeded {
                    cell: name,
                    resource: "wall clock".to_string(),
                },
            ));
        }
        if let Err(e) = sim.try_run(&stimulus) {
            let err = match e {
                SimError::Oscillated { nets } => CoreError::SolverDiverged { cell: name, nets },
                SimError::BudgetExceeded { resource } => CoreError::BudgetExceeded {
                    cell: name,
                    resource: resource.to_string(),
                },
            };
            return Err((FailurePhase::Golden, err));
        }
    }
    // 3+4. Prepare and characterize, panic-isolated: a defective cell
    // must only lose itself, never the batch.
    match isolated(&name, || {
        cache.characterize_budgeted(cell.clone(), options, budget)
    }) {
        Ok(p) => Ok(p),
        Err(err) => {
            let phase = match &err {
                CoreError::SolverDiverged { .. } | CoreError::BudgetExceeded { .. } => {
                    FailurePhase::Characterize
                }
                _ => FailurePhase::Prepare,
            };
            Err((phase, err))
        }
    }
}

/// Runs `f` under [`catch_unwind`], converting a panic into
/// [`CoreError::PrepareFailed`] with the panic message preserved.
pub(crate) fn isolated<T>(
    cell_name: &str,
    f: impl FnOnce() -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(CoreError::PrepareFailed {
            cell: cell_name.to_string(),
            source: format!("panic: {}", ca_exec::panic_message(&*payload)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::corrupt::{corrupt_cell, Corruption};
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::{spice, Technology};

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn tiny_library() -> Library {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(5);
        lib
    }

    #[test]
    fn clean_library_has_empty_quarantine() {
        let lib = tiny_library();
        let outcome = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::SkipAndReport,
        )
        .unwrap();
        assert_eq!(outcome.prepared.len(), lib.len());
        assert!(outcome.quarantine.is_empty());
        assert_eq!(outcome.degraded_count(), 0);
    }

    #[test]
    fn lint_failure_is_quarantined_without_simulation() {
        let mut lib = tiny_library();
        lib.cells[1].cell =
            corrupt_cell(&lib.cells[1].cell, Corruption::FloatingOutput, 3).unwrap();
        let outcome = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::SkipAndReport,
        )
        .unwrap();
        assert_eq!(outcome.prepared.len(), lib.len() - 1);
        assert_eq!(outcome.quarantine.len(), 1);
        let entry = &outcome.quarantine.entries[0];
        assert_eq!(entry.phase, FailurePhase::Lint);
        assert!(entry.reason.contains("undriven-output"), "{}", entry.reason);
    }

    #[test]
    fn oscillator_is_diagnosed_by_the_golden_phase() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let bad = corrupt_cell(&cell, Corruption::OscillatorLoop, 5).unwrap();
        let err = characterize_cell_guarded(
            &bad,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            &CharCache::new(),
        )
        .unwrap_err();
        assert_eq!(err.0, FailurePhase::Golden);
        assert!(
            matches!(err.1, CoreError::SolverDiverged { .. }),
            "{:?}",
            err.1
        );
    }

    #[test]
    fn fail_fast_propagates_the_first_error() {
        let mut lib = tiny_library();
        lib.cells[0].cell = corrupt_cell(&lib.cells[0].cell, Corruption::DanglingGate, 9).unwrap();
        let err = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::FailFast,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::PrepareFailed { .. }), "{err:?}");
    }

    #[test]
    fn retry_recovers_wall_clock_exhaustion_with_a_degraded_model() {
        let lib = tiny_library();
        // A zero wall clock fails every cell up front; one retry lifts
        // the clock and truncates the work, so every cell comes back
        // degraded instead of quarantined.
        let strangled = SimBudget {
            wall_clock: Some(Duration::ZERO),
            ..SimBudget::unlimited()
        };
        let skip = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &strangled,
            FaultPolicy::SkipAndReport,
        )
        .unwrap();
        assert_eq!(skip.quarantine.len(), lib.len());
        assert!(skip
            .quarantine
            .entries
            .iter()
            .all(|e| e.phase == FailurePhase::Golden && e.reason.contains("wall clock")));
        let retried = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &strangled,
            FaultPolicy::RetryWithReducedBudget(1),
        )
        .unwrap();
        assert!(
            retried.quarantine.is_empty(),
            "{}",
            retried.quarantine.render()
        );
        assert_eq!(retried.prepared.len(), lib.len());
        assert_eq!(retried.degraded_count(), lib.len());
        for p in &retried.prepared {
            let model = p.model.as_ref().unwrap();
            assert!(model.degraded);
            // Static-only retry: no dynamic detection classes.
            assert!(model
                .classes
                .iter()
                .all(|c| c.behavior != ca_defects::Behavior::Dynamic));
        }
    }

    #[test]
    fn retries_do_not_help_structural_failures() {
        let mut lib = tiny_library();
        lib.cells[2].cell =
            corrupt_cell(&lib.cells[2].cell, Corruption::ZeroTransistor, 11).unwrap();
        let outcome = characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::RetryWithReducedBudget(3),
        )
        .unwrap();
        assert_eq!(outcome.quarantine.len(), 1);
        let entry = &outcome.quarantine.entries[0];
        assert_eq!(entry.retries, 0);
        assert!(entry.reason.contains("no-transistors"), "{}", entry.reason);
    }

    #[test]
    fn panics_are_converted_to_prepare_failed() {
        let err = isolated::<()>("X", || panic!("boom")).unwrap_err();
        match err {
            CoreError::PrepareFailed { cell, source } => {
                assert_eq!(cell, "X");
                assert!(source.contains("boom"), "{source}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn quarantine_report_renders() {
        let q = Quarantine {
            entries: vec![QuarantineEntry {
                cell: "BAD".into(),
                phase: FailurePhase::Lint,
                reason: "error: no-transistors: cell `BAD` contains no transistors".into(),
                elapsed: Duration::from_millis(2),
                retries: 1,
            }],
        };
        let text = q.render();
        assert!(text.contains("quarantine: 1 cell(s)"));
        assert!(text.contains("BAD [lint]"));
        assert_eq!(q.entry("BAD").unwrap().retries, 1);
        assert!(q.entry("GOOD").is_none());
    }
}
