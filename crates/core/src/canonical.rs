//! Canonical, technology-independent cell description (paper §III.B/C).
//!
//! Two cells with the same *transistor structure* must end up with the
//! same canonical transistor names regardless of their source library's
//! naming and ordering. The pipeline:
//!
//! 1. **Branch extraction** — exit nets are the cell outputs and every net
//!    driving a gate; transistors are grouped into connected components
//!    through nets that are neither exits nor rails, and components with
//!    the same (exit, rail) boundary are merged into one *branch* (the
//!    two-terminal network between the exit and the rail).
//! 2. **Series-parallel decomposition** — each branch is reduced to an
//!    SP tree; the anonymized *branch equation* (`&`/`|` over `1n`/`1p`)
//!    is rendered from it (paper Fig. 5).
//! 3. **Branch sorting** — by (level from the output, transistor count,
//!    anonymized equation).
//! 4. **Transistor ordering** — series chains run exit → rail; parallel
//!    siblings sort by equation then activity value (paper §III.C,
//!    Table II), which resolves the "N1|N2 vs N2|N1" ambiguity.
//! 5. **Renaming** — `N0, N1, ...` / `P0, P1, ...` in canonical order.
//!
//! The module also computes three hashes used by the hybrid flow's
//! structural gate: `structure_hash` (equations only), `wiring_hash`
//! (equations + activity values = identical structure) and `reduced_hash`
//! (after Fig. 6 drive-merge reduction = equivalent structure).

use crate::activation::{Activation, ActivityValue};
use crate::error::CoreError;
use ca_netlist::{Cell, MosKind, NetId, TransistorId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A series-parallel tree over transistors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpTree {
    /// One transistor.
    Leaf(TransistorId),
    /// Series composition, ordered exit → rail.
    Series(Vec<SpTree>),
    /// Parallel composition, canonically sorted.
    Parallel(Vec<SpTree>),
}

impl SpTree {
    /// Leaves in traversal order.
    pub fn leaves(&self) -> Vec<TransistorId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<TransistorId>) {
        match self {
            SpTree::Leaf(t) => out.push(*t),
            SpTree::Series(cs) | SpTree::Parallel(cs) => {
                for c in cs {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// Number of transistors in the subtree.
    pub fn size(&self) -> usize {
        match self {
            SpTree::Leaf(_) => 1,
            SpTree::Series(cs) | SpTree::Parallel(cs) => cs.iter().map(SpTree::size).sum(),
        }
    }
}

/// One branch of the canonical description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// Exit net (stage output) of the branch.
    pub exit: NetId,
    /// Rail the branch pulls towards (`None` for non-SP fallback groups).
    pub rail: Option<NetId>,
    /// Level: 1 = drives the cell output, 2 = drives level-1 gates, ...
    pub level: u32,
    /// Anonymized branch equation, e.g. `((1n&(1n|1n))|1n)`.
    pub equation: String,
    /// The SP tree (`None` when the network was not series-parallel).
    pub tree: Option<SpTree>,
    /// Transistors in canonical order.
    pub transistors: Vec<TransistorId>,
}

/// The canonical view of a cell.
///
/// # Hash invariant
///
/// For canonicals produced by [`CanonicalCell::build`], the three hashes
/// are digests of three *distinct* canonical preimages — equations only,
/// equations + activity values, and the Fig. 6 drive-merged signatures —
/// so two cells agree on a hash exactly when they agree on that preimage
/// (modulo 64-bit collisions, which consumers that reuse results must
/// guard against by comparing the underlying structure, not the hash).
/// Canonicals produced by [`CanonicalCell::netlist_order`] do *not*
/// satisfy this: their hashes are order-sensitive ablation artifacts.
/// They are flagged via [`CanonicalCell::is_netlist_ordered`] and must
/// never be used as reuse/cache keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalCell {
    branches: Vec<Branch>,
    order: Vec<TransistorId>,
    names: Vec<String>,
    position: Vec<usize>,
    structure_hash: u64,
    wiring_hash: u64,
    reduced_hash: u64,
    netlist_ordered: bool,
}

impl CanonicalCell {
    /// Builds the canonical description of `cell` from its activation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unsupported`] for cells whose transistor count
    /// cannot be canonically ordered at all (never happens for CMOS cells
    /// built from pull-up/pull-down networks; pass-transistor groups fall
    /// back to activity ordering instead of failing).
    pub fn build(cell: &Cell, activation: &Activation) -> Result<CanonicalCell, CoreError> {
        let branches = extract_branches(cell, activation)?;
        // Canonical global order: branches are already sorted; concatenate.
        let mut order = Vec::with_capacity(cell.num_transistors());
        for b in &branches {
            order.extend(b.transistors.iter().copied());
        }
        if order.len() != cell.num_transistors() {
            return Err(CoreError::Unsupported(format!(
                "cell `{}`: {} of {} transistors assigned to branches",
                cell.name(),
                order.len(),
                cell.num_transistors()
            )));
        }
        let mut position = vec![usize::MAX; cell.num_transistors()];
        for (pos, t) in order.iter().enumerate() {
            position[t.index()] = pos;
        }
        // Canonical names: N / P counters in canonical order.
        let mut names = vec![String::new(); cell.num_transistors()];
        let (mut n_idx, mut p_idx) = (0usize, 0usize);
        for &t in &order {
            let name = match cell.transistor(t).kind() {
                MosKind::Nmos => {
                    n_idx += 1;
                    format!("N{}", n_idx - 1)
                }
                MosKind::Pmos => {
                    p_idx += 1;
                    format!("P{}", p_idx - 1)
                }
            };
            names[t.index()] = name;
        }
        let structure_hash = hash_strings(
            branches
                .iter()
                .map(|b| format!("L{}:{}", b.level, b.equation)),
        );
        let wiring_hash = hash_strings(branches.iter().map(|b| {
            let acts: Vec<String> = b
                .transistors
                .iter()
                .map(|&t| activation.activity_value(t).to_string())
                .collect();
            format!("L{}:{}@{}", b.level, b.equation, acts.join(","))
        }));
        let reduced_hash = {
            let mut reduced: Vec<String> = branches
                .iter()
                .map(|b| reduced_signature(b, cell, activation))
                .collect();
            reduced.sort();
            reduced.dedup();
            hash_strings(reduced.into_iter())
        };
        Ok(CanonicalCell {
            branches,
            order,
            names,
            position,
            structure_hash,
            wiring_hash,
            reduced_hash,
            netlist_ordered: false,
        })
    }

    /// ABLATION SUPPORT: a degenerate "canonical" view that keeps the raw
    /// netlist order and names. Structure hashes are derived from the
    /// netlist text order, so nothing matches across libraries. Used by
    /// the ablation experiment to demonstrate that the renaming step is
    /// what makes cross-library training possible (paper §III.B).
    pub fn netlist_order(cell: &Cell, activation: &Activation) -> CanonicalCell {
        let order: Vec<TransistorId> = cell.transistor_ids().map(|(id, _)| id).collect();
        let position: Vec<usize> = (0..order.len()).collect();
        let names: Vec<String> = cell
            .transistors()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        // Each hash digests its own domain-tagged stream. The previous
        // implementation assigned one identical signature to all three
        // hashes, which silently made "identical structure" and
        // "equivalent structure" indistinguishable for ablation cells —
        // and would let a fallback-canonicalized cell cross-hit any
        // consumer that compares hashes across the three domains.
        let tagged = |tag: &str| {
            hash_strings(
                std::iter::once(format!("netlist-order:{tag}")).chain(
                    cell.transistors()
                        .iter()
                        .map(|t| format!("{}:{}", t.name(), t.kind().letter())),
                ),
            )
        };
        let branches = vec![Branch {
            exit: cell.output(),
            rail: None,
            level: 1,
            equation: format!("?({}t)", cell.num_transistors()),
            tree: None,
            transistors: order.clone(),
        }];
        let _ = activation;
        CanonicalCell {
            branches,
            order,
            names,
            position,
            structure_hash: tagged("structure"),
            wiring_hash: tagged("wiring"),
            reduced_hash: tagged("reduced"),
            netlist_ordered: true,
        }
    }

    /// Branches in canonical (sorted) order.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// All transistors in canonical order.
    pub fn order(&self) -> &[TransistorId] {
        &self.order
    }

    /// Canonical position of `transistor` (column index in the CA-matrix).
    pub fn position(&self, transistor: TransistorId) -> usize {
        self.position[transistor.index()]
    }

    /// Canonical name (`N0`, `P3`, ...) of `transistor`.
    pub fn name(&self, transistor: TransistorId) -> &str {
        &self.names[transistor.index()]
    }

    /// Hash of the anonymized branch equations (gate wiring ignored).
    pub fn structure_hash(&self) -> u64 {
        self.structure_hash
    }

    /// Hash including activity values: equal hashes mean *identical
    /// structure* in the paper's sense.
    pub fn wiring_hash(&self) -> u64 {
        self.wiring_hash
    }

    /// Hash after Fig. 6 drive-merge reduction: equal hashes mean
    /// *equivalent structure*.
    pub fn reduced_hash(&self) -> u64 {
        self.reduced_hash
    }

    /// Whether this view was produced by the
    /// [`netlist_order`](CanonicalCell::netlist_order) ablation fallback.
    /// Such views carry order-sensitive hashes that do not identify a
    /// structure class; result-reuse caches must refuse to key on them.
    pub fn is_netlist_ordered(&self) -> bool {
        self.netlist_ordered
    }
}

fn hash_strings(parts: impl Iterator<Item = String>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------
// Branch extraction
// ---------------------------------------------------------------------

fn extract_branches(cell: &Cell, activation: &Activation) -> Result<Vec<Branch>, CoreError> {
    let n_nets = cell.nets().len();
    let mut is_exit = vec![false; n_nets];
    for &o in cell.outputs() {
        is_exit[o.index()] = true;
    }
    for t in cell.transistors() {
        is_exit[t.gate().index()] = true;
    }
    let mut is_rail = vec![false; n_nets];
    is_rail[cell.power().index()] = true;
    is_rail[cell.ground().index()] = true;
    // Rails are never exits.
    for i in 0..n_nets {
        if is_rail[i] {
            is_exit[i] = false;
        }
    }

    // Union-find over transistors through interior nets.
    let mut parent: Vec<usize> = (0..cell.num_transistors()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut by_net: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (id, t) in cell.transistor_ids() {
        for net in [t.drain(), t.source()] {
            let i = net.index();
            if !is_exit[i] && !is_rail[i] {
                by_net.entry(i).or_default().push(id.index());
            }
        }
    }
    for group in by_net.values() {
        for w in group.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    // Components and their boundary signatures.
    let mut components: BTreeMap<usize, Vec<TransistorId>> = BTreeMap::new();
    for i in 0..cell.num_transistors() {
        let root = find(&mut parent, i);
        components
            .entry(root)
            .or_default()
            .push(TransistorId(i as u32));
    }
    // Merge components sharing the same (exits, rails) boundary.
    let mut merged: BTreeMap<(Vec<usize>, Vec<usize>), Vec<TransistorId>> = BTreeMap::new();
    for (_, ts) in components {
        let mut exits: BTreeSet<usize> = BTreeSet::new();
        let mut rails: BTreeSet<usize> = BTreeSet::new();
        for &t in &ts {
            let tr = cell.transistor(t);
            for net in [tr.drain(), tr.source()] {
                let i = net.index();
                if is_exit[i] {
                    exits.insert(i);
                }
                if is_rail[i] {
                    rails.insert(i);
                }
            }
        }
        let mut exits: Vec<usize> = exits.into_iter().collect();
        let mut rails: Vec<usize> = rails.into_iter().collect();
        exits.sort_unstable();
        rails.sort_unstable();
        merged.entry((exits, rails)).or_default().extend(ts);
    }

    // Build one branch per merged group.
    let mut branches = Vec::new();
    for ((exits, rails), mut ts) in merged {
        ts.sort();
        if exits.len() == 1 && rails.len() == 1 {
            let exit = NetId(exits[0] as u32);
            let rail = NetId(rails[0] as u32);
            match sp_decompose(cell, &ts, exit, rail, activation) {
                Some(tree) => {
                    let equation = render_equation(&tree, cell);
                    let transistors = tree.leaves();
                    branches.push(Branch {
                        exit,
                        rail: Some(rail),
                        level: 0,
                        equation,
                        tree: Some(tree),
                        transistors,
                    });
                }
                None => branches.push(fallback_branch(cell, ts, exit, Some(rail), activation)),
            }
        } else {
            // Pass-transistor or multi-boundary group: deterministic
            // fallback keyed on activity.
            let exit = exits
                .first()
                .map(|&i| NetId(i as u32))
                .unwrap_or_else(|| cell.output());
            let rail = rails.first().map(|&i| NetId(i as u32));
            branches.push(fallback_branch(cell, ts, exit, rail, activation));
        }
    }

    assign_levels(cell, &mut branches);
    // Paper sorting criteria: level, transistor count, equation. Activity
    // of the first transistor breaks remaining ties deterministically.
    branches.sort_by(|a, b| {
        (a.level, a.transistors.len(), &a.equation)
            .cmp(&(b.level, b.transistors.len(), &b.equation))
            .then_with(|| {
                let key = |br: &Branch| {
                    br.transistors
                        .iter()
                        .map(|&t| activation.activity_value(t).clone())
                        .collect::<Vec<_>>()
                };
                key(a).cmp(&key(b))
            })
    });
    Ok(branches)
}

fn fallback_branch(
    cell: &Cell,
    mut ts: Vec<TransistorId>,
    exit: NetId,
    rail: Option<NetId>,
    activation: &Activation,
) -> Branch {
    ts.sort_by(|&a, &b| {
        let key = |t: TransistorId| {
            (
                cell.transistor(t).kind().letter(),
                activation.activity_value(t).clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    let n = ts
        .iter()
        .filter(|&&t| cell.transistor(t).kind() == MosKind::Nmos)
        .count();
    let p = ts.len() - n;
    Branch {
        exit,
        rail,
        level: 0,
        equation: format!("?({n}n,{p}p)"),
        tree: None,
        transistors: ts,
    }
}

/// Assigns levels: 1 for branches driving a cell output, `k + 1` for
/// branches whose exit gates a level-`k` branch's transistor.
fn assign_levels(cell: &Cell, branches: &mut [Branch]) {
    let outputs: BTreeSet<usize> = cell.outputs().iter().map(|n| n.index()).collect();
    let mut level_of_exit: BTreeMap<usize, u32> = BTreeMap::new();
    for b in branches.iter() {
        if outputs.contains(&b.exit.index()) {
            level_of_exit.insert(b.exit.index(), 1);
        }
    }
    // Relax until fixpoint (bounded by branch count).
    for _ in 0..branches.len() + 1 {
        let mut changed = false;
        for b in branches.iter() {
            let Some(&level) = level_of_exit.get(&b.exit.index()) else {
                continue;
            };
            for &t in &b.transistors {
                let gate = cell.transistor(t).gate().index();
                let entry = level_of_exit.entry(gate).or_insert(u32::MAX);
                if *entry > level + 1 {
                    *entry = level + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for b in branches.iter_mut() {
        b.level = level_of_exit.get(&b.exit.index()).copied().unwrap_or(99);
    }
}

// ---------------------------------------------------------------------
// Series-parallel decomposition
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SpEdge {
    a: usize,
    b: usize,
    /// Tree oriented from `a` to `b`.
    tree: SpTree,
}

fn flip(tree: SpTree) -> SpTree {
    match tree {
        SpTree::Leaf(t) => SpTree::Leaf(t),
        SpTree::Series(mut cs) => {
            cs.reverse();
            SpTree::Series(cs.into_iter().map(flip).collect())
        }
        SpTree::Parallel(cs) => SpTree::Parallel(cs.into_iter().map(flip).collect()),
    }
}

fn series(children: Vec<SpTree>) -> SpTree {
    let mut flat = Vec::new();
    for c in children {
        match c {
            SpTree::Series(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().expect("non-empty")
    } else {
        SpTree::Series(flat)
    }
}

fn parallel(children: Vec<SpTree>) -> SpTree {
    let mut flat = Vec::new();
    for c in children {
        match c {
            SpTree::Parallel(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().expect("non-empty")
    } else {
        SpTree::Parallel(flat)
    }
}

/// Reduces the two-terminal network (`exit`..`rail`) spanned by `ts` to an
/// SP tree, or `None` when the network is not series-parallel.
fn sp_decompose(
    cell: &Cell,
    ts: &[TransistorId],
    exit: NetId,
    rail: NetId,
    activation: &Activation,
) -> Option<SpTree> {
    let mut edges: Vec<SpEdge> = ts
        .iter()
        .map(|&t| {
            let tr = cell.transistor(t);
            SpEdge {
                a: tr.drain().index(),
                b: tr.source().index(),
                tree: SpTree::Leaf(t),
            }
        })
        .collect();
    let terminals = (exit.index(), rail.index());
    loop {
        let before = edges.len();
        // Parallel merge: group edges by unordered endpoint pair.
        let mut groups: BTreeMap<(usize, usize), Vec<SpEdge>> = BTreeMap::new();
        for e in edges.drain(..) {
            let key = (e.a.min(e.b), e.a.max(e.b));
            groups.entry(key).or_default().push(e);
        }
        for ((lo, hi), group) in groups {
            if group.len() == 1 {
                edges.extend(group);
            } else {
                let children: Vec<SpTree> = group
                    .into_iter()
                    .map(|e| if e.a == lo { e.tree } else { flip(e.tree) })
                    .collect();
                edges.push(SpEdge {
                    a: lo,
                    b: hi,
                    tree: parallel(children),
                });
            }
        }
        // Series merge: internal node of degree exactly 2.
        // Ordered map: the merge node choice below must be deterministic,
        // or canonical names of activity-tied parallel stacks flip between
        // calls (HashMap iteration order is per-instance random).
        let mut degree: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            degree.entry(e.a).or_default().push(i);
            degree.entry(e.b).or_default().push(i);
        }
        let mut merge_at: Option<usize> = None;
        for (&node, incident) in &degree {
            if node != terminals.0
                && node != terminals.1
                && incident.len() == 2
                && incident[0] != incident[1]
            {
                merge_at = Some(node);
                break;
            }
        }
        if let Some(node) = merge_at {
            let incident = &degree[&node];
            let (i, j) = (incident[0].min(incident[1]), incident[0].max(incident[1]));
            let e2 = edges.remove(j);
            let e1 = edges.remove(i);
            // Orient e1 (u -> node) and e2 (node -> v).
            let (u, t1) = if e1.b == node {
                (e1.a, e1.tree)
            } else {
                (e1.b, flip(e1.tree))
            };
            let (v, t2) = if e2.a == node {
                (e2.b, e2.tree)
            } else {
                (e2.a, flip(e2.tree))
            };
            edges.push(SpEdge {
                a: u,
                b: v,
                tree: series(vec![t1, t2]),
            });
        }
        if edges.len() == 1 {
            break;
        }
        if edges.len() == before && merge_at.is_none() {
            return None; // irreducible (bridge network)
        }
    }
    let e = edges.pop().expect("single edge");
    if (e.a, e.b) == terminals {
        Some(sort_parallel(e.tree, cell, activation))
    } else if (e.b, e.a) == terminals {
        Some(sort_parallel(flip(e.tree), cell, activation))
    } else {
        None
    }
}

/// Sorts parallel siblings by (anonymized equation, activity values of the
/// subtree leaves) — the paper's deterministic resolution of parallel
/// ambiguity (§III.C).
fn sort_parallel(tree: SpTree, cell: &Cell, activation: &Activation) -> SpTree {
    match tree {
        SpTree::Leaf(t) => SpTree::Leaf(t),
        SpTree::Series(cs) => SpTree::Series(
            cs.into_iter()
                .map(|c| sort_parallel(c, cell, activation))
                .collect(),
        ),
        SpTree::Parallel(cs) => {
            let mut sorted: Vec<SpTree> = cs
                .into_iter()
                .map(|c| sort_parallel(c, cell, activation))
                .collect();
            sorted.sort_by(|x, y| {
                let key = |t: &SpTree| {
                    let eq = render_equation(t, cell);
                    let acts: Vec<ActivityValue> = t
                        .leaves()
                        .iter()
                        .map(|&l| activation.activity_value(l).clone())
                        .collect();
                    (eq, acts)
                };
                key(x).cmp(&key(y))
            });
            SpTree::Parallel(sorted)
        }
    }
}

/// Renders the anonymized equation of an SP tree (`1n`/`1p` leaves).
pub fn render_equation(tree: &SpTree, cell: &Cell) -> String {
    let mut out = String::new();
    render_rec(tree, cell, &mut out);
    out
}

fn render_rec(tree: &SpTree, cell: &Cell, out: &mut String) {
    match tree {
        SpTree::Leaf(t) => {
            let _ = write!(out, "1{}", cell.transistor(*t).kind().letter());
        }
        SpTree::Series(cs) => {
            out.push('(');
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push('&');
                }
                render_rec(c, cell, out);
            }
            out.push(')');
        }
        SpTree::Parallel(cs) => {
            out.push('(');
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                render_rec(c, cell, out);
            }
            out.push(')');
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 6 equivalence reduction
// ---------------------------------------------------------------------

/// Renders a branch signature after merging parallel subtrees that are
/// identical up to activity values (the Fig. 6 drive configurations both
/// collapse to the same signature).
fn reduced_signature(branch: &Branch, cell: &Cell, activation: &Activation) -> String {
    match &branch.tree {
        Some(tree) => format!("L{}:{}", branch.level, reduce_rec(tree, cell, activation)),
        None => format!("L{}:{}", branch.level, branch.equation),
    }
}

fn reduce_rec(tree: &SpTree, cell: &Cell, activation: &Activation) -> String {
    match tree {
        SpTree::Leaf(t) => format!(
            "1{}@{}",
            cell.transistor(*t).kind().letter(),
            activation.activity_value(*t)
        ),
        SpTree::Series(cs) => {
            let parts: Vec<String> = cs.iter().map(|c| reduce_rec(c, cell, activation)).collect();
            format!("({})", parts.join("&"))
        }
        SpTree::Parallel(cs) => {
            let mut parts: Vec<String> =
                cs.iter().map(|c| reduce_rec(c, cell, activation)).collect();
            parts.sort();
            parts.dedup(); // <- the drive-merge
            if parts.len() == 1 {
                parts.pop().expect("non-empty")
            } else {
                format!("({})", parts.join("|"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::synth::{synthesize, DriveStyle, NetlistStyle, StageExpr, StagePlan};
    use ca_netlist::{spice, Technology};

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

    fn canon(cell: &Cell) -> (Activation, CanonicalCell) {
        let act = Activation::extract(cell).unwrap();
        let c = CanonicalCell::build(cell, &act).unwrap();
        (act, c)
    }

    #[test]
    fn nand2_branches_and_equations() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let (_, c) = canon(&cell);
        assert_eq!(c.branches().len(), 2);
        let eqs: Vec<&str> = c.branches().iter().map(|b| b.equation.as_str()).collect();
        assert!(eqs.contains(&"(1n&1n)"), "{eqs:?}");
        assert!(eqs.contains(&"(1p|1p)"), "{eqs:?}");
    }

    #[test]
    fn nand2_renaming_matches_paper_table_ii() {
        // Paper: N10 -> N0 (top of chain), N11 -> N1, Py -> P0, Px -> P1.
        let cell = spice::parse_cell(NAND2).unwrap();
        let (_, c) = canon(&cell);
        let name = |n: &str| c.name(cell.find_transistor(n).unwrap()).to_string();
        assert_eq!(name("MN10"), "N0");
        assert_eq!(name("MN11"), "N1");
        assert_eq!(name("MPY"), "P0");
        assert_eq!(name("MPX"), "P1");
    }

    #[test]
    fn renaming_is_invariant_under_netlist_permutation() {
        // The same NAND2 with devices renamed and reordered (and drain/
        // source swapped on one device — SPICE symmetry) must canonize to
        // the same names for structurally matching devices.
        let shuffled = "\
.SUBCKT NAND2V A B Z VDD VSS
M3 net9 B VSS VSS nch
M1 Z B VDD VDD pch
M0 Z A VDD VDD pch
M2 Z A net9 VSS nch
.ENDS
";
        let a = spice::parse_cell(NAND2).unwrap();
        let b = spice::parse_cell(shuffled).unwrap();
        let (_, ca) = canon(&a);
        let (_, cb) = canon(&b);
        assert_eq!(ca.wiring_hash(), cb.wiring_hash());
        assert_eq!(ca.structure_hash(), cb.structure_hash());
        // Canonical positions line up by structural role: the device at
        // position k has the same polarity and activity value in both.
        let act_a = Activation::extract(&a).unwrap();
        let act_b = Activation::extract(&b).unwrap();
        for (ta, _) in a.transistor_ids() {
            let pos = ca.position(ta);
            // Find b's transistor at the same canonical position; it must
            // have the same kind and activity value.
            let tb = *cb.order().get(pos).unwrap();
            assert_eq!(
                a.transistor(ta).kind(),
                b.transistor(tb).kind(),
                "kind mismatch at position {pos}"
            );
            assert_eq!(
                act_a.activity_value(ta),
                act_b.activity_value(tb),
                "activity mismatch at position {pos}"
            );
        }
    }

    #[test]
    fn fig5_style_nested_equation() {
        // Pull-down ((N0 & (N1 | N2)) | N3) as in Fig. 5.
        let plan = StagePlan::single(
            4,
            StageExpr::Or(vec![
                StageExpr::And(vec![
                    StageExpr::pin(0),
                    StageExpr::Or(vec![StageExpr::pin(1), StageExpr::pin(2)]),
                ]),
                StageExpr::pin(3),
            ]),
        )
        .unwrap();
        let s = synthesize(
            "FIG5",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        let (_, c) = canon(&s.cell);
        let eqs: Vec<&str> = c.branches().iter().map(|b| b.equation.as_str()).collect();
        assert!(
            eqs.contains(&"(1n|(1n&(1n|1n)))") || eqs.contains(&"((1n&(1n|1n))|1n)"),
            "{eqs:?}"
        );
    }

    #[test]
    fn levels_order_stages() {
        // AND2 = NAND2 stage (level 2) + inverter stage (level 1).
        let plan = StagePlan::new(
            2,
            vec![
                ca_netlist::synth::Stage::new(StageExpr::And(vec![
                    StageExpr::pin(0),
                    StageExpr::pin(1),
                ])),
                ca_netlist::synth::Stage::new(StageExpr::stage(0)),
            ],
        )
        .unwrap();
        let s = synthesize(
            "AND2",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .unwrap();
        let (_, c) = canon(&s.cell);
        let mut levels: Vec<u32> = c.branches().iter().map(|b| b.level).collect();
        levels.dedup();
        assert_eq!(levels, vec![1, 2], "branches sorted by level");
        // The first branches (level 1) are the output inverter.
        assert_eq!(c.branches()[0].transistors.len(), 1);
    }

    #[test]
    fn fig6_configurations_are_equivalent_not_identical() {
        let plan = StagePlan::single(
            2,
            StageExpr::And(vec![StageExpr::pin(0), StageExpr::pin(1)]),
        )
        .unwrap();
        let style = NetlistStyle::default();
        let shared = synthesize("X2", &plan, 2, DriveStyle::SharedNets, &style).unwrap();
        let split = synthesize("X2S", &plan, 2, DriveStyle::SplitFingers, &style).unwrap();
        let x1 = synthesize("X1", &plan, 1, DriveStyle::SharedNets, &style).unwrap();
        let (_, cs) = canon(&shared.cell);
        let (_, cf) = canon(&split.cell);
        let (_, c1) = canon(&x1.cell);
        assert_ne!(cs.wiring_hash(), cf.wiring_hash(), "different structures");
        assert_eq!(cs.reduced_hash(), cf.reduced_hash(), "Fig. 6 equivalence");
        assert_eq!(cs.reduced_hash(), c1.reduced_hash(), "drive collapses");
    }

    #[test]
    fn cross_technology_same_wiring_hash() {
        let soi = generate_library(&LibraryConfig::quick(Technology::Soi28));
        let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
        for template in ["NAND2", "NOR3", "AOI21"] {
            let a = soi
                .cells
                .iter()
                .find(|c| c.template == template && c.drive == 1)
                .unwrap();
            let b = c28
                .cells
                .iter()
                .find(|c| c.template == template && c.drive == 1)
                .unwrap();
            let (_, ca) = canon(&a.cell);
            let (_, cb) = canon(&b.cell);
            assert_eq!(ca.wiring_hash(), cb.wiring_hash(), "{template}");
        }
    }

    #[test]
    fn netlist_order_hashes_are_distinct_and_flagged() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let act = Activation::extract(&cell).unwrap();
        let ablated = CanonicalCell::netlist_order(&cell, &act);
        assert!(ablated.is_netlist_ordered());
        // The three hashes digest distinct domains; the old bug assigned
        // one identical signature to all of them.
        assert_ne!(ablated.structure_hash(), ablated.wiring_hash());
        assert_ne!(ablated.wiring_hash(), ablated.reduced_hash());
        assert_ne!(ablated.structure_hash(), ablated.reduced_hash());
        // The real canonicalization is not flagged.
        let built = CanonicalCell::build(&cell, &act).unwrap();
        assert!(!built.is_netlist_ordered());
        // Ablated hashes never collide with built hashes for this cell.
        assert_ne!(ablated.wiring_hash(), built.wiring_hash());
    }

    #[test]
    fn canonical_positions_cover_all_transistors() {
        let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
        for lc in &lib.cells {
            let (_, c) = canon(&lc.cell);
            let mut seen = vec![false; lc.cell.num_transistors()];
            for &t in c.order() {
                assert!(!seen[t.index()], "duplicate in canonical order");
                seen[t.index()] = true;
            }
            assert!(seen.iter().all(|&s| s), "missing transistor");
        }
    }
}
