//! Durable characterization sessions: checkpoint/resume over the
//! journaled on-disk store of `ca-store`.
//!
//! A [`Session`] wraps a [`ca_store::Store`] and gives the library
//! drivers ([`characterize_library_with_session`](crate::charlib::characterize_library_with_session),
//! [`characterize_library_robust_with_session`](crate::robust::characterize_library_robust_with_session))
//! three behaviours:
//!
//! 1. **On start** the store is loaded (recovering any torn tail) and
//!    every record is *re-verified* against the incoming library: the
//!    canonical triple hash, the generation-option tag and the budget tag
//!    must all match the live netlist, and the `.cam` body must parse
//!    against it. Stale or invalid records are evicted and the cell is
//!    re-simulated — a store carried over from an edited library can
//!    never yield a wrong model. Verified complete models are pre-seeded
//!    into the [`CharCache`], so on-disk hits flow through the existing
//!    isomorphism-certified donor path (and benefit structure siblings
//!    that never had a record of their own).
//! 2. **During the run** every finished cell is journaled as it lands —
//!    complete models, degraded models (tagged, and per the
//!    never-a-donor rule *not* seeded into the cache) and quarantine
//!    verdicts alike. Each append is CRC-framed and fsynced, so a crash
//!    at any instant loses at most the cell in flight.
//! 3. **On restart after a crash** verified-complete cells are skipped
//!    and the run resumes mid-library, converging to byte-identical
//!    `.cam` exports and an identical quarantine report (modulo
//!    elapsed-time fields) at any thread count.
//!
//! Journaling failures (disk full mid-run) never abort a batch: they are
//! collected into the [`SessionReport`] and the run continues undurable.

// Session code runs unattended for hours; a stray unwrap here aborts a
// whole characterization run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cache::CharCache;
use crate::error::CoreError;
use crate::matrix::PreparedCell;
use crate::robust::FailurePhase;
use ca_defects::{from_cam, to_cam, GenerateOptions};
use ca_netlist::library::Library;
use ca_netlist::Cell;
use ca_sim::SimBudget;
use ca_store::{Payload, Record, RecoveryReport, Store, StoreStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

thread_local! {
    // Nanoseconds this thread spent inside journal appends (lock wait
    // included) since the last `take_journal_ns`. A ca-serve request
    // runs leader-side on one connection thread, so draining this
    // around the engine call attributes journal time per request
    // without threading a handle through every layer.
    static JOURNAL_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Takes (and resets) the nanoseconds the *calling thread* has spent in
/// session journal appends since the previous take. Feeds the
/// `journal_us` field of ca-serve response timing breakdowns.
pub fn take_journal_ns() -> u64 {
    JOURNAL_NS.with(|c| c.replace(0))
}

/// A durable characterization session bound to one on-disk store.
///
/// Create with [`Session::open`], pass to the `*_with_session` drivers
/// (reusing one session across restarts of the same campaign), and read
/// [`Session::report`] afterwards. The session is `Sync`: journal appends
/// from executor workers serialize on an internal lock.
#[derive(Debug)]
pub struct Session {
    store: Mutex<Store>,
    path: PathBuf,
    recovery: RecoveryReport,
    planned_complete: AtomicUsize,
    planned_degraded: AtomicUsize,
    planned_quarantined: AtomicUsize,
    evicted_stale: AtomicUsize,
    evicted_invalid: AtomicUsize,
    evicted_this_run: AtomicUsize,
    journaled: AtomicUsize,
    journal_errors: Mutex<Vec<String>>,
    halt_after: AtomicUsize,
    abort_on_halt: AtomicBool,
    appended: AtomicUsize,
    /// Last [`StoreStats`] values already mirrored into the global metric
    /// registry; [`Session::lift_store_stats`] publishes only the delta.
    lifted_store: Mutex<StoreStats>,
}

/// Snapshot of a session's lifetime counters, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Outcome of replaying the journal when the session was opened
    /// (torn tails, CRC mismatches, duplicates — all already recovered).
    pub recovery: RecoveryReport,
    /// Records verified and scheduled for reuse as complete models.
    pub reused_complete: usize,
    /// Records verified and scheduled for reuse as degraded models.
    pub reused_degraded: usize,
    /// Quarantine verdicts verified and scheduled for replay.
    pub reused_quarantined: usize,
    /// Records evicted because a hash/tag no longer matched the incoming
    /// library or run configuration (the cell is re-simulated).
    pub evicted_stale: usize,
    /// Records evicted because their body failed to parse or re-verify
    /// (the cell is re-simulated).
    pub evicted_invalid: usize,
    /// Records journaled by runs under this session.
    pub journaled: usize,
    /// Journal append/compaction failures (the runs continued; the named
    /// cells are simply not durable).
    pub journal_errors: Vec<String>,
}

impl SessionReport {
    /// Renders a compact multi-line text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "session: {}", self.recovery.render());
        let _ = writeln!(
            out,
            "  reused: {} complete, {} degraded, {} quarantined",
            self.reused_complete, self.reused_degraded, self.reused_quarantined
        );
        let _ = writeln!(
            out,
            "  evicted: {} stale, {} invalid   journaled: {}",
            self.evicted_stale, self.evicted_invalid, self.journaled
        );
        for err in &self.journal_errors {
            let _ = writeln!(out, "  journal error: {err}");
        }
        out
    }
}

/// How the run should treat one cell, decided at plan time.
#[derive(Debug)]
pub(crate) enum Reuse {
    /// A verified complete model was seeded into the cache; characterize
    /// through the cache (certified donor path) without re-running
    /// lint/golden/simulation.
    Complete,
    /// A verified degraded model, served back to this exact cell only.
    Degraded(Box<PreparedCell>),
    /// A verified quarantine verdict, replayed without re-diagnosis.
    Quarantined {
        phase: FailurePhase,
        retries: u32,
        reason: String,
    },
}

/// Per-run reuse decisions for one library (see [`Session::plan`]).
#[derive(Debug, Default)]
pub(crate) struct SessionPlan {
    reuse: BTreeMap<String, Reuse>,
}

impl SessionPlan {
    pub(crate) fn reuse(&self, cell: &str) -> Option<&Reuse> {
        self.reuse.get(cell)
    }
}

/// Stable whole-netlist fingerprint of a cell (names, net kinds, pins,
/// connectivity and sizes — everything). Exposed for callers that need a
/// cheap exact-identity key *before* the expensive canonical analysis:
/// `ca-serve` coalesces concurrent requests on it, and it is the same
/// hash the session layer stores to re-verify quarantine records.
pub fn cell_fingerprint(cell: &Cell) -> u64 {
    fingerprint(cell)
}

impl Session {
    /// Opens (or creates) the session store at `path`, replaying and
    /// recovering the journal.
    ///
    /// # Errors
    ///
    /// [`CoreError::Storage`] on genuine I/O failure; corruption is
    /// recovered from and surfaced via [`Session::recovery`] instead.
    pub fn open(path: impl AsRef<Path>) -> Result<Session, CoreError> {
        let path = path.as_ref().to_path_buf();
        let store = Store::open(&path).map_err(|e| CoreError::Storage {
            path: path.display().to_string(),
            source: e.to_string(),
        })?;
        let recovery = store.recovery().clone();
        // Recovery is news, not failure: surface it in the structured
        // event sink instead of leaving it buried in the report value.
        ca_obs::emit_recovery("ca_core.session", &path, &recovery);
        let session = Session {
            store: Mutex::new(store),
            path,
            recovery,
            planned_complete: AtomicUsize::new(0),
            planned_degraded: AtomicUsize::new(0),
            planned_quarantined: AtomicUsize::new(0),
            evicted_stale: AtomicUsize::new(0),
            evicted_invalid: AtomicUsize::new(0),
            evicted_this_run: AtomicUsize::new(0),
            journaled: AtomicUsize::new(0),
            journal_errors: Mutex::new(Vec::new()),
            halt_after: AtomicUsize::new(0),
            abort_on_halt: AtomicBool::new(false),
            appended: AtomicUsize::new(0),
            lifted_store: Mutex::new(StoreStats::default()),
        };
        // Publish the open/recovery I/O (header fsyncs, torn-tail
        // truncation) before the first append.
        {
            let store = session.lock_store();
            session.lift_store_stats(&store);
        }
        Ok(session)
    }

    /// Path of the underlying store file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Snapshot-isolated read of one journaled record: the store lock is
    /// held for the duration of the clone, so the caller sees a record
    /// that was fully journaled — never a half-applied update — even
    /// while executor workers are appending concurrently.
    pub fn snapshot_record(&self, cell: &str) -> Option<Record> {
        self.lock_store().get(cell).cloned()
    }

    /// The journal replay/recovery outcome from [`Session::open`].
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of live records currently in the store.
    pub fn len(&self) -> usize {
        self.lock_store().len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the session counters.
    pub fn report(&self) -> SessionReport {
        SessionReport {
            recovery: self.recovery.clone(),
            reused_complete: self.planned_complete.load(Ordering::Relaxed),
            reused_degraded: self.planned_degraded.load(Ordering::Relaxed),
            reused_quarantined: self.planned_quarantined.load(Ordering::Relaxed),
            evicted_stale: self.evicted_stale.load(Ordering::Relaxed),
            evicted_invalid: self.evicted_invalid.load(Ordering::Relaxed),
            journaled: self.journaled.load(Ordering::Relaxed),
            journal_errors: self.lock_errors().clone(),
        }
    }

    /// CRASH-INJECTION HOOK (tests): after the `n`-th journal append of
    /// this session completes (record durable on disk), print
    /// `CA-SESSION-HALT <n>` to stdout and freeze while *holding the
    /// store lock*, so no further record can land. The process must then
    /// be killed externally — this is how the crash-recovery harness
    /// SIGKILLs a run at a deterministic cell index.
    pub fn halt_after_journal(&self, n: usize) {
        self.halt_after.store(n, Ordering::SeqCst);
    }

    /// CRASH-INJECTION HOOK (tests): like
    /// [`halt_after_journal`](Session::halt_after_journal), but instead
    /// of freezing, the process calls [`std::process::abort`] right
    /// after the marker — dying at a journal append point with no
    /// destructors, exactly like a SIGKILL that needs no external
    /// killer. The shard-worker crash matrix uses this to crash a
    /// worker deterministically mid-campaign; every fsynced record
    /// survives, everything after the append point is lost.
    pub fn abort_after_journal(&self, n: usize) {
        self.abort_on_halt.store(true, Ordering::SeqCst);
        self.halt_after.store(n, Ordering::SeqCst);
    }

    /// Re-verifies every store record against `library` under the run
    /// configuration, evicting anything stale or invalid, seeding the
    /// cache with verified complete models, and returning the per-cell
    /// reuse decisions. `replay_quarantine` is false for fail-fast runs
    /// (a replayed verdict cannot reproduce the original error value).
    pub(crate) fn plan(
        &self,
        library: &Library,
        options: GenerateOptions,
        budget: &SimBudget,
        cache: &CharCache,
        replay_quarantine: bool,
    ) -> SessionPlan {
        let mut plan = SessionPlan::default();
        let opts_tag = options_tag(options);
        let bud_tag = budget_tag(budget);
        let mut store = self.lock_store();
        for lc in &library.cells {
            let name = lc.cell.name();
            let Some(record) = store.get(name).cloned() else {
                continue;
            };
            if record.options_tag != opts_tag || record.budget_tag != bud_tag {
                self.evict(&mut store, name, &self.evicted_stale);
                continue;
            }
            match record.payload.clone() {
                Payload::Quarantined {
                    phase,
                    retries,
                    reason,
                } => {
                    if !replay_quarantine {
                        continue;
                    }
                    if record.fingerprint != fingerprint(&lc.cell) {
                        self.evict(&mut store, name, &self.evicted_stale);
                        continue;
                    }
                    let Some(phase) = decode_phase(phase) else {
                        self.evict(&mut store, name, &self.evicted_invalid);
                        continue;
                    };
                    self.planned_quarantined.fetch_add(1, Ordering::Relaxed);
                    ca_obs::counter!("ca_core.session.reused_quarantined", Work).inc();
                    plan.reuse.insert(
                        name.to_string(),
                        Reuse::Quarantined {
                            phase,
                            retries,
                            reason,
                        },
                    );
                }
                Payload::Complete { cam } | Payload::Degraded { cam } => {
                    let degraded_record = matches!(record.payload, Payload::Degraded { .. });
                    // Panic-isolated: a library edit can make `prepare`
                    // not just fail but panic, and re-verification must
                    // only cost the record, never the run.
                    let prepared =
                        crate::robust::isolated(name, || PreparedCell::prepare(lc.cell.clone()));
                    let Ok(mut prepared) = prepared else {
                        // The record promises a model but the live cell no
                        // longer even prepares: the library was edited.
                        self.evict(&mut store, name, &self.evicted_stale);
                        continue;
                    };
                    if prepared.canonical.is_netlist_ordered()
                        || record.structure != prepared.canonical.structure_hash()
                        || record.wiring != prepared.canonical.wiring_hash()
                        || record.reduced != prepared.canonical.reduced_hash()
                    {
                        self.evict(&mut store, name, &self.evicted_stale);
                        continue;
                    }
                    let Ok(model) = from_cam(&cam, &prepared.cell) else {
                        self.evict(&mut store, name, &self.evicted_invalid);
                        continue;
                    };
                    if model.degraded != degraded_record {
                        self.evict(&mut store, name, &self.evicted_invalid);
                        continue;
                    }
                    if degraded_record {
                        self.planned_degraded.fetch_add(1, Ordering::Relaxed);
                        ca_obs::counter!("ca_core.session.reused_degraded", Work).inc();
                        prepared.universe = model.universe.clone();
                        prepared.model = Some(model);
                        plan.reuse
                            .insert(name.to_string(), Reuse::Degraded(Box::new(prepared)));
                    } else {
                        cache.seed_donor(
                            prepared.cell.clone(),
                            prepared.canonical.clone(),
                            model,
                            options,
                        );
                        self.planned_complete.fetch_add(1, Ordering::Relaxed);
                        ca_obs::counter!("ca_core.session.reused_complete", Work).inc();
                        plan.reuse.insert(name.to_string(), Reuse::Complete);
                    }
                }
            }
        }
        plan
    }

    /// Journals a characterized cell (complete or degraded). Errors are
    /// reported, never raised: a dead disk must not kill the batch.
    pub(crate) fn journal_model(
        &self,
        prepared: &PreparedCell,
        options: GenerateOptions,
        budget: &SimBudget,
    ) {
        let Some(model) = prepared.model.as_ref() else {
            return;
        };
        let cam = to_cam(model);
        let record = Record {
            cell: prepared.cell.name().to_string(),
            structure: prepared.canonical.structure_hash(),
            wiring: prepared.canonical.wiring_hash(),
            reduced: prepared.canonical.reduced_hash(),
            fingerprint: fingerprint(&prepared.cell),
            options_tag: options_tag(options),
            budget_tag: budget_tag(budget),
            payload: if model.degraded {
                Payload::Degraded { cam }
            } else {
                Payload::Complete { cam }
            },
        };
        self.append(&record);
    }

    /// Journals a quarantine verdict so a resumed run can replay it
    /// without re-diagnosing the failure.
    pub(crate) fn journal_quarantine(
        &self,
        cell: &Cell,
        phase: FailurePhase,
        reason: &str,
        retries: u32,
        options: GenerateOptions,
        budget: &SimBudget,
    ) {
        let record = Record {
            cell: cell.name().to_string(),
            structure: 0,
            wiring: 0,
            reduced: 0,
            fingerprint: fingerprint(cell),
            options_tag: options_tag(options),
            budget_tag: budget_tag(budget),
            payload: Payload::Quarantined {
                phase: encode_phase(phase),
                retries,
                reason: reason.to_string(),
            },
        };
        self.append(&record);
    }

    /// Compacts the journal if this session saw duplicates, corruption or
    /// evictions (otherwise the file is already a clean snapshot).
    /// Called by the drivers at the end of a run.
    pub(crate) fn maybe_compact(&self) {
        let needs = !self.recovery.is_clean()
            || self.recovery.duplicates > 0
            || self.evicted_this_run.swap(0, Ordering::Relaxed) > 0;
        if !needs {
            return;
        }
        let mut store = self.lock_store();
        if let Err(e) = store.compact() {
            self.lock_errors().push(format!("compaction failed: {e}"));
        }
        self.lift_store_stats(&store);
    }

    fn append(&self, record: &Record) {
        let journal_time = ca_obs::Stopwatch::start();
        let mut store = self.lock_store();
        match store.append(record) {
            Ok(()) => {
                self.journaled.fetch_add(1, Ordering::Relaxed);
                ca_obs::counter!("ca_core.session.journaled", Work).inc();
                self.lift_store_stats(&store);
                let count = self.appended.fetch_add(1, Ordering::SeqCst) + 1;
                let halt = self.halt_after.load(Ordering::SeqCst);
                if halt != 0 && count == halt {
                    // Crash-injection hook: announce the halt point, then
                    // freeze *holding the store lock* so no later record
                    // can land before the external SIGKILL arrives. The
                    // marker is inter-process protocol with the SIGKILL
                    // harness, so it goes through the one sanctioned
                    // stdout door (invariant D5).
                    ca_obs::protocol_marker(&format!("CA-SESSION-HALT {count}"));
                    if self.abort_on_halt.load(Ordering::SeqCst) {
                        // Self-inflicted crash: no unwinding, no
                        // destructors, records up to here are durable.
                        std::process::abort();
                    }
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
            }
            Err(e) => {
                // I/O failures are environment accidents, not work done:
                // `Ops`, so they never join determinism fingerprints.
                ca_obs::counter!("ca_core.session.journal_errors", Ops).inc();
                self.lock_errors()
                    .push(format!("journal append for `{}` failed: {e}", record.cell));
            }
        }
        JOURNAL_NS.with(|c| c.set(c.get().saturating_add(journal_time.elapsed_ns())));
    }

    fn evict(&self, store: &mut MutexGuard<'_, Store>, cell: &str, counter: &AtomicUsize) {
        store.evict(cell);
        counter.fetch_add(1, Ordering::Relaxed);
        self.evicted_this_run.fetch_add(1, Ordering::Relaxed);
        // One call site serves both eviction kinds, so the metric name
        // varies and the site-cached `counter!` macro cannot be used.
        let metric = if std::ptr::eq(counter, &self.evicted_stale) {
            "ca_core.session.evicted_stale"
        } else {
            "ca_core.session.evicted_invalid"
        };
        ca_obs::global()
            .counter(metric, ca_obs::MetricClass::Work)
            .inc();
        self.lift_store_stats(store);
    }

    /// Mirrors the underlying store's I/O counters into the global metric
    /// registry as `ca_store.*` deltas. `ca-store` itself carries no
    /// `ca-obs` dependency (the dependency points the other way: `ca-obs`
    /// uses its `write_atomic`), so the session layer lifts the plain
    /// [`StoreStats`] fields here. Idempotent: only growth since the last
    /// lift is added.
    fn lift_store_stats(&self, store: &Store) {
        let stats = store.stats();
        let mut last = self
            .lifted_store
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let lift = |name: &str, now: u64, then: u64| {
            if now > then {
                ca_obs::global()
                    .counter(name, ca_obs::MetricClass::Work)
                    .add(now - then);
            }
        };
        lift("ca_store.journal.appends", stats.appends, last.appends);
        lift(
            "ca_store.journal.append_bytes",
            stats.append_bytes,
            last.append_bytes,
        );
        lift("ca_store.journal.fsyncs", stats.fsyncs, last.fsyncs);
        lift(
            "ca_store.journal.compactions",
            stats.compactions,
            last.compactions,
        );
        lift(
            "ca_store.journal.evictions",
            stats.evictions,
            last.evictions,
        );
        lift(
            "ca_store.recovery.truncated_bytes",
            stats.recovery_truncated_bytes,
            last.recovery_truncated_bytes,
        );
        *last = stats;
    }

    fn lock_store(&self) -> MutexGuard<'_, Store> {
        self.store
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_errors(&self) -> MutexGuard<'_, Vec<String>> {
        self.journal_errors
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

// ---------------------------------------------------------------------
// Tags and fingerprints
// ---------------------------------------------------------------------

/// Stable tag of the generation options. Bit-packed rather than hashed:
/// three booleans, trivially collision-free and stable across versions.
fn options_tag(options: GenerateOptions) -> u64 {
    u64::from(options.policy.driven_x_detects)
        | u64::from(options.policy.floating_x_detects) << 1
        | u64::from(options.inter_transistor) << 2
}

/// Stable tag of a simulation budget (FNV over its encoded fields).
/// Records are only reused under the budget they were produced with, so
/// a resumed run converges to exactly what the uninterrupted run under
/// the same configuration would have produced.
fn budget_tag(budget: &SimBudget) -> u64 {
    let mut h = Fnv::new();
    h.opt(budget.max_solver_iterations.map(|v| v as u64));
    h.opt(budget.max_stimuli.map(|v| v as u64));
    h.opt(budget.max_defects.map(|v| v as u64));
    h.opt(budget.wall_clock.map(|d| {
        let nanos = d.as_nanos();
        (nanos as u64) ^ ((nanos >> 64) as u64)
    }));
    h.finish()
}

/// Whole-netlist fingerprint: names, net kinds, pin lists, transistor
/// connectivity *and sizes*. Unlike the canonical triple (which quotients
/// away sizes and naming on purpose), this changes on any edit — it is
/// the staleness check for quarantine records, whose failure can depend
/// on anything in the netlist.
fn fingerprint(cell: &Cell) -> u64 {
    let mut h = Fnv::new();
    h.str(cell.name());
    h.u64(cell.nets().len() as u64);
    for net in cell.nets() {
        h.str(net.name());
        h.u64(net.kind() as u64);
    }
    for pins in [cell.inputs(), cell.outputs()] {
        h.u64(pins.len() as u64);
        for pin in pins {
            h.u64(u64::from(pin.0));
        }
    }
    h.u64(u64::from(cell.power().0));
    h.u64(u64::from(cell.ground().0));
    h.u64(cell.num_transistors() as u64);
    for t in cell.transistors() {
        h.str(t.name());
        h.u64(t.kind() as u64);
        for net in [t.drain(), t.gate(), t.source(), t.bulk()] {
            h.u64(u64::from(net.0));
        }
        h.u64(u64::from(t.width_nm()));
        h.u64(u64::from(t.length_nm()));
    }
    h.finish()
}

/// FNV-1a, with length-prefixed field framing so adjacent fields cannot
/// alias.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn opt(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.u64(v);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn encode_phase(phase: FailurePhase) -> u8 {
    match phase {
        FailurePhase::Lint => 0,
        FailurePhase::Golden => 1,
        FailurePhase::Prepare => 2,
        FailurePhase::Characterize => 3,
    }
}

// ca-audit: allow(D10, phase is a one-byte journal tag with no payload to cap)
pub(crate) fn decode_phase(byte: u8) -> Option<FailurePhase> {
    match byte {
        0 => Some(FailurePhase::Lint),
        1 => Some(FailurePhase::Golden),
        2 => Some(FailurePhase::Prepare),
        3 => Some(FailurePhase::Characterize),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;
    use std::time::Duration;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ca-session-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.caj"))
    }

    #[test]
    fn options_tag_distinguishes_all_axes() {
        use ca_sim::DetectionPolicy;
        let mut tags = std::collections::HashSet::new();
        for driven in [false, true] {
            for floating in [false, true] {
                for inter in [false, true] {
                    tags.insert(options_tag(GenerateOptions {
                        policy: DetectionPolicy {
                            driven_x_detects: driven,
                            floating_x_detects: floating,
                        },
                        inter_transistor: inter,
                    }));
                }
            }
        }
        assert_eq!(tags.len(), 8);
    }

    #[test]
    fn budget_tag_distinguishes_field_positions() {
        let unlimited = SimBudget::unlimited();
        let a = SimBudget {
            max_stimuli: Some(4),
            ..SimBudget::unlimited()
        };
        let b = SimBudget {
            max_defects: Some(4),
            ..SimBudget::unlimited()
        };
        let c = SimBudget {
            wall_clock: Some(Duration::from_secs(4)),
            ..SimBudget::unlimited()
        };
        let tags = [
            budget_tag(&unlimited),
            budget_tag(&a),
            budget_tag(&b),
            budget_tag(&c),
        ];
        let unique: std::collections::HashSet<u64> = tags.iter().copied().collect();
        assert_eq!(unique.len(), tags.len(), "{tags:?}");
        assert_eq!(budget_tag(&unlimited), budget_tag(&SimBudget::default()));
    }

    #[test]
    fn fingerprint_sees_sizes_and_names() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let base = fingerprint(&cell);
        assert_eq!(base, fingerprint(&spice::parse_cell(NAND2).unwrap()));
        let renamed = spice::parse_cell(&NAND2.replace("MN1", "MNX")).unwrap();
        assert_ne!(base, fingerprint(&renamed));
        let rewired = spice::parse_cell(&NAND2.replace("MN1 net0 B", "MN1 net0 A")).unwrap();
        assert_ne!(base, fingerprint(&rewired));
    }

    #[test]
    fn phase_codes_round_trip() {
        for phase in [
            FailurePhase::Lint,
            FailurePhase::Golden,
            FailurePhase::Prepare,
            FailurePhase::Characterize,
        ] {
            assert_eq!(decode_phase(encode_phase(phase)), Some(phase));
        }
        assert_eq!(decode_phase(200), None);
    }

    #[test]
    fn open_reports_recovery_and_counts() {
        let path = tmp_path("open");
        let _ = std::fs::remove_file(&path);
        let session = Session::open(&path).unwrap();
        assert!(session.recovery().is_clean());
        assert!(session.is_empty());
        let report = session.report();
        assert_eq!(report.journaled, 0);
        assert!(report.render().contains("session:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_failure_is_a_storage_error() {
        let err = Session::open("/nonexistent-dir-xyz/store.caj").unwrap_err();
        assert!(matches!(err, CoreError::Storage { .. }), "{err:?}");
    }
}
