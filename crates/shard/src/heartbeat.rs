//! Hardened heartbeat reading for the supervisor's liveness watchdog.
//!
//! Workers rewrite their heartbeat file atomically with an incrementing
//! counter ([`worker`](crate::worker)); the supervisor polls it. The
//! naive read — "any read failure counts as silence" — conflates three
//! very different situations, and [`HeartbeatMonitor`] splits them
//! apart:
//!
//! - [`HeartbeatStatus::Fresh`]: the counter progressed, or the liveness
//!   window since the last progress is still open. The worker is alive.
//! - [`HeartbeatStatus::Unreadable`]: the file is missing, unreadable,
//!   or holds something that is not a counter (a partially-written or
//!   garbage file). This is an *observation* problem, not proof of a
//!   hang — the worker may be alive and beating into a file we briefly
//!   cannot see — so it must not reset or shortcut the liveness window.
//! - [`HeartbeatStatus::Stale`]: no progress has been observed for the
//!   whole timeout, whatever the reads said in between. Only this
//!   status justifies killing the worker.
//!
//! The liveness window is a [`ca_obs::clock::Deadline`] re-armed on each
//! observed progress, so the policy is explicit: *fresh beats buy time,
//! failed reads never take it away early*. Heartbeat files are written
//! via `write_atomic`, so an unreadable file is rare — but a hostile
//! filesystem (NFS hiccup, torn tmpfs, operator `truncate`) must
//! degrade to a classified observation, never to an instant kill.

use ca_obs::clock::Deadline;
use std::path::PathBuf;
use std::time::Duration;

/// One classified heartbeat observation; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatStatus {
    /// Progress observed, or the liveness window is still open.
    Fresh,
    /// No progress for at least the timeout: the worker is presumed
    /// hung and should be killed.
    Stale,
    /// The file could not be read or parsed this poll; the liveness
    /// window keeps running unchanged.
    Unreadable,
}

/// Stateful heartbeat reader: owns the last-seen counter and the
/// liveness window. One monitor per worker attempt.
#[derive(Debug)]
pub struct HeartbeatMonitor {
    path: PathBuf,
    timeout: Duration,
    last: Option<u64>,
    window: Deadline,
}

impl HeartbeatMonitor {
    /// A monitor whose liveness window starts now: the worker has
    /// `timeout` to produce its first beat.
    pub fn new(path: PathBuf, timeout: Duration) -> HeartbeatMonitor {
        HeartbeatMonitor {
            path,
            timeout,
            last: None,
            window: Deadline::after(timeout),
        }
    }

    /// Reads and classifies the heartbeat file once.
    pub fn poll(&mut self) -> HeartbeatStatus {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => match text.trim().parse::<u64>() {
                Ok(beat) => {
                    // Any counter change is progress — including a
                    // restart from zero after an attempt boundary.
                    if self.last != Some(beat) {
                        self.last = Some(beat);
                        self.window = Deadline::after(self.timeout);
                        return HeartbeatStatus::Fresh;
                    }
                    if self.window.expired() {
                        HeartbeatStatus::Stale
                    } else {
                        HeartbeatStatus::Fresh
                    }
                }
                // UTF-8 but not a counter: a partially-written or
                // foreign file. Classified, window untouched.
                Err(_) => self.unreadable(),
            },
            // Missing (worker not started beating yet) or genuinely
            // unreadable (permissions, non-UTF-8 garbage).
            Err(_) => self.unreadable(),
        }
    }

    fn unreadable(&self) -> HeartbeatStatus {
        // An unreadable file never shortcuts the window — but it cannot
        // hold it open forever either: with no observed progress for
        // the whole timeout, the verdict is a hang.
        if self.window.expired() {
            HeartbeatStatus::Stale
        } else {
            HeartbeatStatus::Unreadable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ca-heartbeat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.beat"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn progressing_counter_is_fresh() {
        let path = tmp("fresh");
        // A zero timeout expires instantly, so only genuine progress
        // can report Fresh — the strictest possible check.
        let mut monitor = HeartbeatMonitor::new(path.clone(), Duration::ZERO);
        for beat in 1..=3u64 {
            ca_store::write_atomic(&path, format!("{beat}\n")).unwrap();
            assert_eq!(monitor.poll(), HeartbeatStatus::Fresh, "beat {beat}");
        }
        // A restart from a lower counter still counts as progress.
        ca_store::write_atomic(&path, "0\n").unwrap();
        assert_eq!(monitor.poll(), HeartbeatStatus::Fresh);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unchanged_counter_past_timeout_is_stale() {
        let path = tmp("stale");
        ca_store::write_atomic(&path, "7\n").unwrap();
        let mut monitor = HeartbeatMonitor::new(path.clone(), Duration::ZERO);
        // First poll observes progress (re-arms the zero window, which
        // expires immediately); the second poll sees no progress past
        // the window: a hang.
        assert_eq!(monitor.poll(), HeartbeatStatus::Fresh);
        assert_eq!(monitor.poll(), HeartbeatStatus::Stale);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_file_is_classified_not_treated_as_a_hang() {
        let path = tmp("unreadable");
        let mut monitor = HeartbeatMonitor::new(path.clone(), Duration::from_secs(3600));
        // Missing file: unreadable, and the worker keeps its window.
        assert_eq!(monitor.poll(), HeartbeatStatus::Unreadable);
        // Garbage text (a partial write torn mid-number-plus-junk).
        ca_store::write_atomic(&path, "12 garbage\n").unwrap();
        assert_eq!(monitor.poll(), HeartbeatStatus::Unreadable);
        // Non-UTF-8 bytes.
        ca_store::write_atomic(&path, [0xFFu8, 0xFE, 0x00, 0x80]).unwrap();
        assert_eq!(monitor.poll(), HeartbeatStatus::Unreadable);
        // Recovery: a valid beat after the noise is fresh again.
        ca_store::write_atomic(&path, "13\n").unwrap();
        assert_eq!(monitor.poll(), HeartbeatStatus::Fresh);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_past_timeout_becomes_stale() {
        let path = tmp("unreadable-stale");
        ca_store::write_atomic(&path, "not a counter").unwrap();
        let mut monitor = HeartbeatMonitor::new(path.clone(), Duration::ZERO);
        // The window opened expired and no progress was ever observed:
        // even an unreadable file must eventually resolve to a hang.
        assert_eq!(monitor.poll(), HeartbeatStatus::Stale);
        let _ = std::fs::remove_file(&path);
    }
}
