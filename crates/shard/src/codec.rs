//! Lossless library codec for the worker process boundary.
//!
//! Workers receive their shard as a file. SPICE would be the obvious
//! format, but the SPICE parser *infers* pin roles from channel
//! connectivity — which is exactly what a deliberately broken cell
//! (floating output, dangling gate) does not preserve, and broken
//! cells are the robustness pipeline's reason to exist. This codec
//! instead serializes the netlist model itself: net kinds are explicit
//! and net/transistor order is exact, so `decode(encode(cell))` equals
//! the original cell for everything [`ca_netlist::CellBuilder`]
//! accepts. Library-cell metadata (function, template, drive) is *not*
//! carried: the robust driver and the journal records depend only on
//! the netlist, so workers run with placeholder metadata and the
//! supervisor keeps the real metadata for the final pass.
//!
//! Grammar (one token-separated record per line):
//!
//! ```text
//! calib/1
//! tech <name>
//! cells <count>
//! cell <name> <num_nets> <num_transistors>
//! net <name> <input|output|internal|power|ground>
//! mos <name> <n|p> <drain> <gate> <source> <bulk> <w_nm> <l_nm>
//! endcell
//! end
//! ```
//!
//! Net references are indices into the cell's net list, preserving ids
//! exactly. Names containing whitespace cannot be framed; such cells
//! fail [`round_trips`] and stay on the supervisor's in-process path.

use ca_netlist::library::{Library, LibraryCell, Technology};
use ca_netlist::{Cell, CellBuilder, Expr, MosKind, NetId, NetKind};
use std::fmt;

/// Format tag of the first line; bump on any grammar change.
const MAGIC: &str = "calib/1";

/// A malformed document (or one this version cannot read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn kind_token(kind: NetKind) -> &'static str {
    match kind {
        NetKind::Input => "input",
        NetKind::Output => "output",
        NetKind::Internal => "internal",
        NetKind::Power => "power",
        NetKind::Ground => "ground",
    }
}

fn parse_kind(token: &str) -> Result<NetKind, CodecError> {
    match token {
        "input" => Ok(NetKind::Input),
        "output" => Ok(NetKind::Output),
        "internal" => Ok(NetKind::Internal),
        "power" => Ok(NetKind::Power),
        "ground" => Ok(NetKind::Ground),
        other => Err(CodecError(format!("unknown net kind `{other}`"))),
    }
}

fn parse_tech(token: &str) -> Result<Technology, CodecError> {
    Technology::ALL
        .into_iter()
        .find(|t| t.name() == token)
        .ok_or_else(|| CodecError(format!("unknown technology `{token}`")))
}

/// Encodes `library` (netlists and technology only; see module docs).
pub fn encode_library(library: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "tech {}", library.technology.name());
    let _ = writeln!(out, "cells {}", library.cells.len());
    for lc in &library.cells {
        encode_cell(&mut out, &lc.cell);
    }
    out.push_str("end\n");
    out
}

fn encode_cell(out: &mut String, cell: &Cell) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "cell {} {} {}",
        cell.name(),
        cell.nets().len(),
        cell.num_transistors()
    );
    for net in cell.nets() {
        let _ = writeln!(out, "net {} {}", net.name(), kind_token(net.kind()));
    }
    for t in cell.transistors() {
        let _ = writeln!(
            out,
            "mos {} {} {} {} {} {} {} {}",
            t.name(),
            t.kind().letter(),
            t.drain().index(),
            t.gate().index(),
            t.source().index(),
            t.bulk().index(),
            t.width_nm(),
            t.length_nm()
        );
    }
    out.push_str("endcell\n");
}

/// Decodes a [`encode_library`] document. Worker-side metadata is a
/// placeholder (see module docs): only `cell` and `technology` are
/// meaningful in the returned library.
///
/// # Errors
///
/// [`CodecError`] on any framing, reference or validation failure —
/// including cells the [`CellBuilder`] rejects (e.g. transistor-less
/// cells, which only the corruption harness can construct).
pub fn decode_library(text: &str) -> Result<Library, CodecError> {
    let mut lines = text.lines().enumerate();
    let mut next = |want: &str| -> Result<(usize, Vec<String>), CodecError> {
        for (no, raw) in lines.by_ref() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            return Ok((no + 1, tokens));
        }
        Err(CodecError(format!("unexpected end of document ({want})")))
    };

    let (_, magic) = next("magic")?;
    if magic != [MAGIC] {
        return Err(CodecError(format!("bad magic {magic:?}")));
    }
    let (no, tech) = next("tech")?;
    let [ref kw, ref name] = tech[..] else {
        return Err(CodecError(format!("line {no}: malformed tech line")));
    };
    if kw != "tech" {
        return Err(CodecError(format!("line {no}: expected `tech`")));
    }
    let technology = parse_tech(name)?;
    let (no, count) = next("cells")?;
    let [ref kw, ref n] = count[..] else {
        return Err(CodecError(format!("line {no}: malformed cells line")));
    };
    if kw != "cells" {
        return Err(CodecError(format!("line {no}: expected `cells`")));
    }
    let count: usize = n
        .parse()
        .map_err(|_| CodecError(format!("line {no}: bad cell count `{n}`")))?;

    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        let (no, header) = next("cell header")?;
        let [ref kw, ref name, ref nets, ref mos] = header[..] else {
            return Err(CodecError(format!("line {no}: malformed cell header")));
        };
        if kw != "cell" {
            return Err(CodecError(format!("line {no}: expected `cell`")));
        }
        let num_nets: usize = nets
            .parse()
            .map_err(|_| CodecError(format!("line {no}: bad net count")))?;
        let num_mos: usize = mos
            .parse()
            .map_err(|_| CodecError(format!("line {no}: bad transistor count")))?;
        let mut builder = CellBuilder::new(name.clone());
        for _ in 0..num_nets {
            let (no, line) = next("net")?;
            let [ref kw, ref name, ref kind] = line[..] else {
                return Err(CodecError(format!("line {no}: malformed net line")));
            };
            if kw != "net" {
                return Err(CodecError(format!("line {no}: expected `net`")));
            }
            let before = builder.num_nets();
            builder.add_net(name.clone(), parse_kind(kind)?);
            if builder.num_nets() == before {
                return Err(CodecError(format!("line {no}: duplicate net `{name}`")));
            }
        }
        let net_id = |token: &str, no: usize| -> Result<NetId, CodecError> {
            let idx: u32 = token
                .parse()
                .map_err(|_| CodecError(format!("line {no}: bad net index `{token}`")))?;
            if (idx as usize) >= num_nets {
                return Err(CodecError(format!(
                    "line {no}: net index {idx} out of range"
                )));
            }
            Ok(NetId(idx))
        };
        for _ in 0..num_mos {
            let (no, line) = next("mos")?;
            let [ref kw, ref name, ref kind, ref d, ref g, ref s, ref b, ref w, ref l] = line[..]
            else {
                return Err(CodecError(format!("line {no}: malformed mos line")));
            };
            if kw != "mos" {
                return Err(CodecError(format!("line {no}: expected `mos`")));
            }
            let kind = match kind.as_str() {
                "n" => MosKind::Nmos,
                "p" => MosKind::Pmos,
                other => return Err(CodecError(format!("line {no}: bad mos kind `{other}`"))),
            };
            let w: u32 = w
                .parse()
                .map_err(|_| CodecError(format!("line {no}: bad width")))?;
            let l: u32 = l
                .parse()
                .map_err(|_| CodecError(format!("line {no}: bad length")))?;
            builder
                .add_transistor(
                    name.clone(),
                    kind,
                    net_id(d, no)?,
                    net_id(g, no)?,
                    net_id(s, no)?,
                    net_id(b, no)?,
                    w,
                    l,
                )
                .map_err(|e| CodecError(format!("line {no}: {e}")))?;
        }
        let (no, end) = next("endcell")?;
        if end != ["endcell"] {
            return Err(CodecError(format!("line {no}: expected `endcell`")));
        }
        let cell = builder
            .build()
            .map_err(|e| CodecError(format!("cell rejected: {e}")))?;
        cells.push(LibraryCell {
            cell,
            // Placeholder metadata: the robust driver and the journal
            // records depend only on the netlist (see module docs).
            function: Expr::var(0),
            template: String::new(),
            drive: 1,
            style: Default::default(),
        });
    }
    let (no, end) = next("end")?;
    if end != ["end"] {
        return Err(CodecError(format!("line {no}: expected `end`")));
    }
    Ok(Library { technology, cells })
}

/// Whether `cell` survives the process boundary bit-for-bit. Cells
/// that do not (names with whitespace, builder-rejected structures)
/// are characterized in-process by the supervisor instead of being
/// shipped to a worker.
pub fn round_trips(cell: &Cell) -> bool {
    let mut doc = String::from("calib/1\ntech C40\ncells 1\n");
    encode_cell(&mut doc, cell);
    doc.push_str("end\n");
    match decode_library(&doc) {
        // PANIC-OK: the length check guards the index.
        Ok(lib) => lib.cells.len() == 1 && lib.cells[0].cell == *cell,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::corrupt::{corrupt_cell, Corruption};
    use ca_netlist::library::{generate_library, LibraryConfig};

    fn strip_meta(lib: &Library) -> Vec<&Cell> {
        lib.cells.iter().map(|lc| &lc.cell).collect()
    }

    #[test]
    fn generated_libraries_round_trip_exactly() {
        for tech in Technology::ALL {
            let lib = generate_library(&LibraryConfig::quick(tech));
            let decoded = decode_library(&encode_library(&lib)).expect("decode");
            assert_eq!(decoded.technology, tech);
            assert_eq!(strip_meta(&decoded), strip_meta(&lib), "{tech}");
            for lc in &lib.cells {
                assert!(round_trips(&lc.cell), "{}", lc.cell.name());
            }
        }
    }

    #[test]
    fn corrupted_cells_round_trip_too() {
        // The whole point of the codec: damage that SPICE role
        // inference would mangle survives the process boundary.
        let lib = generate_library(&LibraryConfig::quick(Technology::C40));
        for corruption in [
            Corruption::FloatingOutput,
            Corruption::DanglingGate,
            Corruption::OscillatorLoop,
        ] {
            let bad = corrupt_cell(&lib.cells[1].cell, corruption, 7).expect("corrupt");
            assert!(round_trips(&bad), "{corruption:?}");
        }
    }

    #[test]
    fn transistor_less_cells_are_rejected_not_mangled() {
        let lib = generate_library(&LibraryConfig::quick(Technology::C40));
        let bad = corrupt_cell(&lib.cells[0].cell, Corruption::ZeroTransistor, 5).expect("corrupt");
        assert!(!round_trips(&bad));
    }

    #[test]
    fn encoding_is_deterministic() {
        let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
        assert_eq!(encode_library(&lib), encode_library(&lib));
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for doc in [
            "",
            "calib/9\n",
            "calib/1\ntech Q99\ncells 0\nend\n",
            "calib/1\ntech C40\ncells 1\nend\n",
            "calib/1\ntech C40\ncells 1\ncell X 1 0\nnet a input\nendcell\nend\n",
            "calib/1\ntech C40\ncells 0\n",
        ] {
            assert!(decode_library(doc).is_err(), "{doc:?}");
        }
    }
}
