//! `ca-shard` — fault-tolerant sharded multi-process characterization.
//!
//! A long characterization campaign makes worker failure the common
//! case, not the exception: a process is OOM-killed mid-library, a
//! pathological cell hangs a solver, a container loses its spawn
//! permissions. This crate turns the single-process durable session of
//! `ca-core` into a supervised multi-process campaign (DESIGN.md §11):
//!
//! 1. **Plan** ([`plan`]): the library is partitioned into shards by a
//!    stable FNV-1a hash of the canonical cell key (the cell name), so
//!    a cell's shard assignment never depends on library order, retry
//!    history or shard launch order.
//! 2. **Ship** ([`codec`]): each shard's cells cross the process
//!    boundary in a lossless text encoding that round-trips the exact
//!    netlist model — explicit net kinds, exact net/transistor order —
//!    so even deliberately broken cells (the robustness pipeline's
//!    whole point) arrive at the worker bit-for-bit. Cells that cannot
//!    round-trip are held back and characterized in-process.
//! 3. **Work** ([`worker`]): each worker process runs the crash-safe
//!    robust session driver against a *private* `.caj` journal and
//!    proves liveness by atomically rewriting a heartbeat file.
//! 4. **Supervise** ([`supervisor`]): the supervisor watches exit
//!    status and heartbeats. A crashed (SIGKILL/abort), hung
//!    (heartbeat timeout → SIGKILL) or failing (nonzero exit) worker
//!    gets its shard retried under a deterministic capped
//!    [`ca_obs::Backoff`], optionally with a reduced budget on the
//!    final attempt; a shard that exhausts retries is quarantined with
//!    a structured report instead of failing the campaign; if process
//!    spawning itself is unavailable the shard degrades to in-process
//!    execution with a loud event.
//! 5. **Merge** ([`merge`]): all shard journals are replayed through
//!    `ca-store` torn-tail recovery and folded — order-independently,
//!    last conflict resolved by a total record order — into one store,
//!    and a final in-process session pass over the merged store yields
//!    `.cam` exports byte-identical to the unsharded single-process
//!    run, regardless of shard count, kill points or retry history.
//!
//! The byte-identity claim is not aspirational: `tests/shard_merge.rs`
//! shuffles/duplicates/damages shard journals and
//! `tests/shard_supervision.rs` crashes real worker processes at
//! deterministic journal append points, both asserting convergence to
//! the single-process golden output.

// Supervision code runs unattended for hours; a stray unwrap here
// kills a campaign instead of retrying a shard.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod heartbeat;
pub mod merge;
pub mod plan;
pub mod spec;
pub mod supervisor;
pub mod worker;

pub use codec::{decode_library, encode_library, round_trips, CodecError};
pub use merge::{merge_shard_stores, MergeReport};
pub use plan::{shard_of, ShardPlan};
pub use spec::{TestHook, WorkerSpec};
pub use supervisor::{
    run_campaign, AttemptOutcome, CampaignConfig, CampaignOutcome, CampaignReport, ShardError,
    ShardReport, ShardStatus, Spawner,
};
