//! Deterministic, order-independent merge of shard journals.
//!
//! Every source journal is replayed through `ca-store`'s torn-tail
//! recovery (damage is truncated away, reported, and surfaced as
//! structured events via [`ca_obs::emit_recovery`] — never merged).
//! Records then fold into one map keyed by the canonical cell key with
//! a *commutative, associative* conflict resolution, so the merged
//! store is byte-identical no matter how shards are ordered, retried
//! or duplicated:
//!
//! 1. Higher payload rank wins: `Complete` > `Degraded` >
//!    `Quarantined` (a retry that produced a better outcome beats the
//!    leftovers of a crashed attempt).
//! 2. Ties fall back to a total lexicographic order over every record
//!    field — an arbitrary but *stable* choice, so conflicting
//!    duplicates (which a healthy campaign never produces) still
//!    resolve identically from any merge order.
//!
//! The destination is rewritten from scratch in key order; its bytes
//! are a pure function of the merged record set.

use ca_store::{Payload, Record, Store};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// What one merge did, for reports and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Source journals that existed and were replayed.
    pub sources: usize,
    /// Live records seen across all sources (after per-journal
    /// last-writer-wins replay).
    pub records_seen: usize,
    /// Records in the merged store.
    pub merged_records: usize,
    /// Cross-shard duplicate keys that had to be resolved.
    pub duplicates: usize,
    /// Sources whose journal needed corruption recovery.
    pub recovered_sources: usize,
}

impl MergeReport {
    /// One-line summary.
    pub fn render(&self) -> String {
        format!(
            "merge: {} source(s), {} record(s) -> {} merged, {} duplicate key(s), {} recovered",
            self.sources,
            self.records_seen,
            self.merged_records,
            self.duplicates,
            self.recovered_sources
        )
    }
}

/// Rank of a payload in conflict resolution (higher wins).
fn payload_rank(payload: &Payload) -> u8 {
    match payload {
        Payload::Complete { .. } => 2,
        Payload::Degraded { .. } => 1,
        Payload::Quarantined { .. } => 0,
    }
}

/// Total order over records: payload rank first, then every field
/// lexicographically. Used only to resolve conflicting duplicates
/// deterministically — the *choice* is arbitrary, its stability is not.
fn record_cmp(a: &Record, b: &Record) -> Ordering {
    payload_rank(&a.payload)
        .cmp(&payload_rank(&b.payload))
        .then_with(|| a.structure.cmp(&b.structure))
        .then_with(|| a.wiring.cmp(&b.wiring))
        .then_with(|| a.reduced.cmp(&b.reduced))
        .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        .then_with(|| a.options_tag.cmp(&b.options_tag))
        .then_with(|| a.budget_tag.cmp(&b.budget_tag))
        .then_with(|| match (&a.payload, &b.payload) {
            (Payload::Complete { cam: x }, Payload::Complete { cam: y })
            | (Payload::Degraded { cam: x }, Payload::Degraded { cam: y }) => x.cmp(y),
            (
                Payload::Quarantined {
                    phase: xp,
                    retries: xr,
                    reason: xs,
                },
                Payload::Quarantined {
                    phase: yp,
                    retries: yr,
                    reason: ys,
                },
            ) => xp.cmp(yp).then_with(|| xr.cmp(yr)).then_with(|| xs.cmp(ys)),
            // Ranks already differ; unreachable but total anyway.
            _ => Ordering::Equal,
        })
}

/// Merges every existing journal in `sources` into a fresh store at
/// `dest` (any previous file there is replaced). Missing sources are
/// skipped — a shard that never launched has no journal, and that must
/// not fail the campaign's merge.
///
/// # Errors
///
/// Genuine I/O failure opening, reading or writing a store. Journal
/// *corruption* is never an error: recovery truncates and reports it.
pub fn merge_shard_stores(sources: &[PathBuf], dest: &Path) -> io::Result<MergeReport> {
    let mut report = MergeReport::default();
    let mut merged: BTreeMap<String, Record> = BTreeMap::new();
    for source in sources {
        if !source.exists() {
            continue;
        }
        let store = Store::open(source)?;
        ca_obs::emit_recovery("ca_shard.merge", source, store.recovery());
        if !store.recovery().is_clean() {
            report.recovered_sources += 1;
        }
        report.sources += 1;
        report.records_seen += store.len();
        for (cell, record) in store.records() {
            match merged.get(cell) {
                None => {
                    merged.insert(cell.clone(), record.clone());
                }
                Some(existing) => {
                    report.duplicates += 1;
                    if record_cmp(record, existing) == Ordering::Greater {
                        merged.insert(cell.clone(), record.clone());
                    }
                }
            }
        }
    }
    if dest.exists() {
        std::fs::remove_file(dest)?;
    }
    let mut out = Store::open(dest)?;
    for record in merged.values() {
        out.append(record)?;
    }
    report.merged_records = merged.len();
    ca_obs::global()
        .counter("ca_shard.merge.records", ca_obs::MetricClass::Work)
        .add(report.merged_records as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cell: &str, payload: Payload) -> Record {
        Record {
            cell: cell.to_string(),
            structure: 1,
            wiring: 2,
            reduced: 3,
            fingerprint: 4,
            options_tag: 0,
            budget_tag: 0,
            payload,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ca-shard-merge-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn plant(path: &Path, records: &[Record]) {
        let _ = std::fs::remove_file(path);
        let mut store = Store::open(path).expect("open");
        for r in records {
            store.append(r).expect("append");
        }
    }

    #[test]
    fn complete_beats_degraded_beats_quarantined_from_either_order() {
        let dir = scratch("rank");
        let a = dir.join("a.caj");
        let b = dir.join("b.caj");
        plant(&a, &[record("X", Payload::Complete { cam: "good".into() })]);
        plant(
            &b,
            &[record(
                "X",
                Payload::Quarantined {
                    phase: 1,
                    retries: 0,
                    reason: "crashed attempt leftovers".into(),
                },
            )],
        );
        for order in [[a.clone(), b.clone()], [b.clone(), a.clone()]] {
            let dest = dir.join("merged.caj");
            let report = merge_shard_stores(&order, &dest).expect("merge");
            assert_eq!(report.merged_records, 1);
            assert_eq!(report.duplicates, 1);
            let merged = Store::open(&dest).expect("reopen");
            assert!(matches!(
                merged.get("X").expect("record").payload,
                Payload::Complete { .. }
            ));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_bytes_are_order_independent() {
        let dir = scratch("bytes");
        let a = dir.join("a.caj");
        let b = dir.join("b.caj");
        let c = dir.join("c.caj");
        plant(&a, &[record("P", Payload::Complete { cam: "p".into() })]);
        plant(
            &b,
            &[
                record("Q", Payload::Degraded { cam: "q".into() }),
                record("P", Payload::Complete { cam: "p".into() }),
            ],
        );
        plant(&c, &[record("R", Payload::Complete { cam: "r".into() })]);
        let mut baseline = None;
        for order in [
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), b.clone(), a.clone()],
            vec![b.clone(), c.clone(), a.clone()],
        ] {
            let dest = dir.join("merged.caj");
            merge_shard_stores(&order, &dest).expect("merge");
            let bytes = std::fs::read(&dest).expect("read merged");
            match &baseline {
                None => baseline = Some(bytes),
                Some(expect) => assert_eq!(&bytes, expect, "order {order:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sources_are_skipped() {
        let dir = scratch("missing");
        let a = dir.join("a.caj");
        plant(&a, &[record("X", Payload::Complete { cam: "x".into() })]);
        let dest = dir.join("merged.caj");
        let report =
            merge_shard_stores(&[dir.join("never-launched.caj"), a], &dest).expect("merge");
        assert_eq!(report.sources, 1);
        assert_eq!(report.merged_records, 1);
        // The missing path must not have been created by the merge.
        assert!(!dir.join("never-launched.caj").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_ties_resolve_identically_from_any_order() {
        let dir = scratch("tie");
        let a = dir.join("a.caj");
        let b = dir.join("b.caj");
        // Same rank, different bodies: resolution must be stable.
        plant(&a, &[record("X", Payload::Complete { cam: "aaa".into() })]);
        plant(&b, &[record("X", Payload::Complete { cam: "zzz".into() })]);
        let mut winners = Vec::new();
        for order in [[a.clone(), b.clone()], [b.clone(), a.clone()]] {
            let dest = dir.join("merged.caj");
            merge_shard_stores(&order, &dest).expect("merge");
            let merged = Store::open(&dest).expect("reopen");
            let Payload::Complete { cam } = merged.get("X").expect("record").payload.clone() else {
                panic!("complete expected");
            };
            winners.push(cam);
        }
        assert_eq!(winners[0], winners[1]);
        assert_eq!(winners[0], "zzz", "lexicographically greater body wins");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_source_is_recovered_and_counted() {
        let dir = scratch("damage");
        let a = dir.join("a.caj");
        plant(
            &a,
            &[
                record("X", Payload::Complete { cam: "x".into() }),
                record("Y", Payload::Complete { cam: "y".into() }),
            ],
        );
        ca_store::corrupt::garbage_append(&a, 0xBAD, 40).expect("garbage");
        let dest = dir.join("merged.caj");
        let report = merge_shard_stores(&[a], &dest).expect("merge");
        assert_eq!(report.recovered_sources, 1);
        assert_eq!(report.merged_records, 2);
        assert!(report.render().contains("1 recovered"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
