//! The supervisor: plans shards, launches workers, watches them, and
//! merges what survives.
//!
//! Failure handling is the whole design:
//!
//! * **Crash** (abort/SIGKILL mid-journal): the worker's exit status has
//!   no code; the shard is retried and its successor *resumes* from the
//!   fsynced prefix of the same journal.
//! * **Hang** (no heartbeat progress for `heartbeat_timeout`): the
//!   supervisor SIGKILLs the worker and retries the shard.
//! * **Failure** (nonzero exit): retried like a crash.
//! * **Retries** are paced by a deterministic capped [`Backoff`] — no
//!   ambient randomness, identical pacing on every run — and the final
//!   attempt can run under `FaultPolicy::RetryWithReducedBudget` so a
//!   budget-starved cell degrades instead of sinking its whole shard.
//! * **Exhausted retries** quarantine the shard with a structured
//!   [`ShardReport`]; the campaign completes without it.
//! * **No spawn at all** (container without process permissions): the
//!   shard degrades to in-process execution with a loud event.
//!
//! After supervision every shard journal — including a quarantined
//! shard's partial journal — is merged ([`crate::merge`]) and a final
//! in-process session pass over the merged store re-verifies every
//! record and characterizes whatever is missing (held-back cells that
//! could not cross the process boundary, cells lost to quarantine are
//! *excluded* and reported). The certified-donor session path makes the
//! resulting `.cam` exports byte-identical to an unsharded run.

use crate::heartbeat::{HeartbeatMonitor, HeartbeatStatus};
use crate::merge::{merge_shard_stores, MergeReport};
use crate::plan::ShardPlan;
use crate::spec::WorkerSpec;
use crate::worker;
use ca_core::{
    characterize_library_robust_with_session, CharCache, CoreError, FaultPolicy, RobustOutcome,
    Session,
};
use ca_exec::Executor;
use ca_netlist::library::Library;
use ca_obs::{Backoff, MetricClass, Stopwatch};
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// How worker processes are launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Spawner {
    /// Spawn `program args...` with the worker spec in its environment;
    /// the program must call [`crate::worker::run_from_env`].
    Process {
        /// Worker executable.
        program: PathBuf,
        /// Arguments before the spec environment is applied.
        args: Vec<String>,
    },
    /// Run every worker inside the supervisor process (no isolation —
    /// a worker crash is a campaign crash). The explicit form of the
    /// degraded mode the supervisor falls into when spawning fails.
    InProcess,
}

impl Spawner {
    /// A spawner that re-invokes the current executable with `args`.
    ///
    /// # Errors
    ///
    /// When the current executable path cannot be determined.
    pub fn current_exe(args: Vec<String>) -> io::Result<Spawner> {
        Ok(Spawner::Process {
            program: std::env::current_exe()?,
            args,
        })
    }
}

/// Campaign-level knobs. Everything is explicit and deterministic;
/// the only wall-clock inputs are the heartbeat pacing values.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Shard count (clamped to at least 1).
    pub shards: usize,
    /// Model-generation options, shared by workers and the final pass.
    pub options: ca_defects::GenerateOptions,
    /// Simulation budget, shared by workers and the final pass.
    pub budget: ca_sim::SimBudget,
    /// Maximum worker attempts per shard (at least 1).
    pub max_attempts: u32,
    /// Per-cell fault policy for workers and the final pass. Must not
    /// be [`FaultPolicy::FailFast`] — one broken cell must not sink a
    /// campaign.
    pub retry_policy: FaultPolicy,
    /// When set, a shard's *final* attempt runs its not-yet-journaled
    /// cells under `FaultPolicy::RetryWithReducedBudget(n)` so a
    /// budget-starved cell degrades rather than quarantining its shard.
    /// `None` (the default) keeps every attempt under `retry_policy`,
    /// preserving byte-identity with the unsharded run.
    pub final_attempt_retries: Option<u32>,
    /// Deterministic pacing between a shard's attempts.
    pub backoff: Backoff,
    /// How often workers rewrite their heartbeat file.
    pub heartbeat_interval: Duration,
    /// Heartbeat silence after which a worker is declared hung and
    /// killed. Must comfortably exceed `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// How many shards are supervised concurrently.
    pub concurrency: usize,
}

impl CampaignConfig {
    /// A conservative default campaign over `shards` shards.
    pub fn new(shards: usize) -> CampaignConfig {
        CampaignConfig {
            shards,
            options: ca_defects::GenerateOptions::default(),
            budget: ca_sim::SimBudget::unlimited(),
            max_attempts: 3,
            retry_policy: FaultPolicy::SkipAndReport,
            final_attempt_retries: None,
            backoff: Backoff::new(Duration::from_millis(50), Duration::from_secs(2)),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_secs(5),
            concurrency: 4,
        }
    }
}

/// What one worker attempt came to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Worker process exited 0.
    Completed,
    /// Spawning failed; the in-process fallback completed the shard.
    CompletedInProcess,
    /// Worker exited with this nonzero code.
    ExitCode(i32),
    /// Worker died without an exit code (crash signal, e.g. abort or
    /// SIGKILL).
    Killed,
    /// Worker stopped heartbeating and was killed by the supervisor.
    HeartbeatTimeout,
    /// Spawning failed *and* the in-process fallback failed too.
    SpawnFailed(String),
}

/// Terminal state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Some attempt completed the shard.
    Completed,
    /// Every attempt failed; the shard's cells were skipped.
    Quarantined,
}

/// Per-shard supervision record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub index: usize,
    /// Cell names in this shard, in library order.
    pub cells: Vec<String>,
    /// One entry per attempt, in attempt order.
    pub attempts: Vec<AttemptOutcome>,
    /// Terminal state.
    pub status: ShardStatus,
}

impl ShardReport {
    /// Whether this shard fell back to in-process execution.
    pub fn degraded(&self) -> bool {
        self.attempts
            .iter()
            .any(|a| matches!(a, AttemptOutcome::CompletedInProcess))
    }
}

/// Campaign-level summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-shard supervision records, by shard index.
    pub shards: Vec<ShardReport>,
    /// What the journal merge did.
    pub merge: MergeReport,
    /// Wall-clock seconds the merge took (ops timing, not part of any
    /// deterministic output).
    pub merge_seconds: f64,
    /// Attempts beyond each shard's first (a healthy campaign has 0).
    pub retries: usize,
    /// Workers killed for heartbeat silence.
    pub heartbeat_timeouts: usize,
    /// Attempts that could not spawn a worker process.
    pub spawn_failures: usize,
    /// Shards that exhausted every attempt.
    pub quarantined_shards: usize,
    /// Cells that could not round-trip the shard codec and were
    /// characterized in-process instead.
    pub held_back_cells: usize,
}

impl CampaignReport {
    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "campaign: {} shard(s), {} retr{}, {} heartbeat timeout(s), {} spawn failure(s), \
             {} quarantined, {} held back\n{}",
            self.shards.len(),
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
            self.heartbeat_timeouts,
            self.spawn_failures,
            self.quarantined_shards,
            self.held_back_cells,
            self.merge.render(),
        );
        for shard in &self.shards {
            out.push_str(&format!(
                "\n  shard {}: {} cell(s), {} attempt(s), {:?}",
                shard.index,
                shard.cells.len(),
                shard.attempts.len(),
                shard.status
            ));
        }
        out
    }
}

/// A completed campaign.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The final characterization outcome (same shape as the unsharded
    /// robust driver's).
    pub outcome: RobustOutcome,
    /// Supervision and merge summary.
    pub report: CampaignReport,
    /// Cells skipped because their shard was quarantined, in library
    /// order.
    pub skipped_cells: Vec<String>,
    /// Path of the merged journal (a valid `ca-store` file).
    pub merged_store: PathBuf,
}

/// Campaign-level failure (shard-level failures never surface here —
/// they retry, degrade or quarantine).
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure in the supervisor itself.
    Io(io::Error),
    /// The configuration cannot run a campaign.
    Config(String),
    /// The final in-process pass failed.
    Run(CoreError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "supervisor i/o error: {e}"),
            ShardError::Config(msg) => write!(f, "invalid campaign config: {msg}"),
            ShardError::Run(e) => write!(f, "final characterization pass failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> ShardError {
        ShardError::Io(e)
    }
}

impl From<CoreError> for ShardError {
    fn from(e: CoreError) -> ShardError {
        ShardError::Run(e)
    }
}

/// Runs a sharded campaign over `library`, using `work_dir` for shard
/// libraries, journals and heartbeat files. See the module docs for
/// the failure model.
///
/// # Errors
///
/// [`ShardError::Config`] for unrunnable configurations (zero
/// attempts, `FailFast` policy), [`ShardError::Io`] for supervisor
/// filesystem failures, [`ShardError::Run`] if the final in-process
/// pass fails. Worker failures are handled, not returned.
pub fn run_campaign(
    library: &Library,
    config: &CampaignConfig,
    spawner: &Spawner,
    work_dir: &Path,
) -> Result<CampaignOutcome, ShardError> {
    if config.max_attempts == 0 {
        return Err(ShardError::Config("max_attempts must be at least 1".into()));
    }
    if matches!(config.retry_policy, FaultPolicy::FailFast) {
        return Err(ShardError::Config(
            "FailFast cannot supervise a campaign; use SkipAndReport or RetryWithReducedBudget"
                .into(),
        ));
    }
    std::fs::create_dir_all(work_dir)?;

    // Campaign root span: the trace id is derived from the library's
    // cell fingerprints (order-sensitive FNV fold), so the same
    // campaign yields the same trace id on every run and every resume.
    let campaign_fp = library
        .cells
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, lc| {
            acc.wrapping_mul(0x100_0000_01b3) ^ ca_core::cell_fingerprint(&lc.cell)
        });
    let _campaign_span = ca_obs::trace::root("campaign", campaign_fp, "supervisor");

    // Cells that cannot cross the process boundary losslessly are held
    // back for the final in-process pass: correctness over parallelism.
    let mut shardable = Library {
        technology: library.technology,
        cells: Vec::new(),
    };
    let mut held_back = 0usize;
    for lc in &library.cells {
        if crate::codec::round_trips(&lc.cell) {
            shardable.cells.push(lc.clone());
        } else {
            held_back += 1;
            ca_obs::warn(
                "ca_shard.supervisor",
                "cell cannot round-trip the shard codec; held back for in-process characterization",
                &[("cell", lc.cell.name())],
            );
        }
    }

    let plan = ShardPlan::partition(&shardable, config.shards);
    let indices: Vec<usize> = (0..plan.shards.len())
        // PANIC-OK: `i` ranges over the plan's own shard indices.
        .filter(|&i| !plan.shards[i].is_empty())
        .collect();
    ca_obs::global()
        .counter("ca_shard.campaign.shards", MetricClass::Work)
        .add(indices.len() as u64);

    // Ship each populated shard's library.
    for &i in &indices {
        let doc = crate::codec::encode_library(&plan.shard_library(&shardable, i));
        ca_store::write_atomic(shard_path(work_dir, i, "lib"), doc)?;
    }

    // Supervise shards concurrently.
    let pool = Executor::with_threads(config.concurrency.max(1));
    let shard_reports: Vec<ShardReport> = pool.map(&indices, |_, &i| {
        // PANIC-OK: `i` comes from `indices` (plan shard indices).
        // PANIC-OK: plan entries index the `shardable` library it split.
        let cells: Vec<String> = plan.shards[i]
            .iter()
            .map(|&c| shardable.cells[c].cell.name().to_string())
            .collect();
        supervise_shard(i, cells, config, spawner, work_dir)
    });

    let quarantined: BTreeSet<usize> = shard_reports
        .iter()
        .filter(|r| r.status == ShardStatus::Quarantined)
        .map(|r| r.index)
        .collect();
    for report in &shard_reports {
        if report.status == ShardStatus::Quarantined {
            ca_obs::global()
                .counter("ca_shard.campaign.quarantined_shards", MetricClass::Ops)
                .inc();
            ca_obs::warn(
                "ca_shard.supervisor",
                "shard exhausted every attempt; its cells are skipped",
                &[
                    ("shard", &report.index.to_string()),
                    ("cells", &report.cells.len().to_string()),
                    ("attempts", &report.attempts.len().to_string()),
                ],
            );
        }
    }

    // Merge every journal that exists — a quarantined shard's partial
    // journal included (its records are simply unused by the final
    // pass; merging them is harmless and keeps the merge total).
    let sources: Vec<PathBuf> = indices
        .iter()
        .map(|&i| shard_path(work_dir, i, "caj"))
        .collect();
    let merged_store = work_dir.join("merged.caj");
    let merge_watch = Stopwatch::start();
    let merge = merge_shard_stores(&sources, &merged_store)?;
    let merge_seconds = merge_watch.elapsed().as_secs_f64();

    // Final in-process pass over the merged store: re-verifies every
    // merged record via the certified donor path and characterizes
    // held-back cells. Quarantined shards' cells are excluded.
    let mut final_lib = Library {
        technology: library.technology,
        cells: Vec::new(),
    };
    let mut skipped_cells = Vec::new();
    for lc in &library.cells {
        let in_quarantined_shard = crate::codec::round_trips(&lc.cell)
            && quarantined.contains(&crate::plan::shard_of(lc.cell.name(), config.shards.max(1)));
        if in_quarantined_shard {
            skipped_cells.push(lc.cell.name().to_string());
        } else {
            final_lib.cells.push(lc.clone());
        }
    }
    let session = Session::open(&merged_store)?;
    let outcome = characterize_library_robust_with_session(
        &final_lib,
        config.options,
        &config.budget,
        config.retry_policy,
        &Executor::from_env(),
        &CharCache::new(),
        &session,
    )
    .map_err(ShardError::Run)?;

    let report = CampaignReport {
        retries: shard_reports
            .iter()
            .map(|r| r.attempts.len().saturating_sub(1))
            .sum(),
        heartbeat_timeouts: count_outcomes(&shard_reports, |a| {
            matches!(a, AttemptOutcome::HeartbeatTimeout)
        }),
        spawn_failures: count_outcomes(&shard_reports, |a| {
            matches!(
                a,
                AttemptOutcome::CompletedInProcess | AttemptOutcome::SpawnFailed(_)
            )
        }),
        quarantined_shards: quarantined.len(),
        held_back_cells: held_back,
        shards: shard_reports,
        merge,
        merge_seconds,
    };
    Ok(CampaignOutcome {
        outcome,
        report,
        skipped_cells,
        merged_store,
    })
}

fn count_outcomes(reports: &[ShardReport], pred: impl Fn(&AttemptOutcome) -> bool) -> usize {
    reports
        .iter()
        .flat_map(|r| r.attempts.iter())
        .filter(|a| pred(a))
        .count()
}

fn shard_path(work_dir: &Path, index: usize, ext: &str) -> PathBuf {
    work_dir.join(format!("shard-{index}.{ext}"))
}

/// Supervises one shard to its terminal state.
fn supervise_shard(
    index: usize,
    cells: Vec<String>,
    config: &CampaignConfig,
    spawner: &Spawner,
    work_dir: &Path,
) -> ShardReport {
    // The executor adopted this closure into the campaign span's fork
    // (keyed by shard position), so this parents under the campaign
    // root at any concurrency level.
    let _shard_span = ca_obs::trace::span_keyed("shard", index as u64);
    let mut attempts = Vec::new();
    for attempt in 1..=config.max_attempts {
        let pause = config.backoff.delay(attempt - 1);
        if pause > Duration::ZERO {
            std::thread::sleep(pause);
        }
        if attempt > 1 {
            ca_obs::global()
                .counter("ca_shard.campaign.retries", MetricClass::Ops)
                .inc();
        }
        // The final attempt may trade fidelity for completion.
        let policy = match (attempt == config.max_attempts, config.final_attempt_retries) {
            (true, Some(n)) => FaultPolicy::RetryWithReducedBudget(n),
            _ => config.retry_policy,
        };
        let attempt_span = ca_obs::trace::span_keyed("shard_attempt", u64::from(attempt));
        let spec = WorkerSpec {
            library_path: shard_path(work_dir, index, "lib"),
            store_path: shard_path(work_dir, index, "caj"),
            heartbeat_path: shard_path(work_dir, index, "hb"),
            options: config.options,
            budget: config.budget,
            policy,
            shard_index: index,
            attempt,
            heartbeat_interval: config.heartbeat_interval,
            trace: attempt_span.context(),
        };
        let outcome = run_attempt(&spec, config, spawner);
        drop(attempt_span);
        let completed = matches!(
            outcome,
            AttemptOutcome::Completed | AttemptOutcome::CompletedInProcess
        );
        attempts.push(outcome);
        if completed {
            return ShardReport {
                index,
                cells,
                attempts,
                status: ShardStatus::Completed,
            };
        }
        ca_obs::warn(
            "ca_shard.supervisor",
            "shard attempt failed",
            &[
                ("shard", &index.to_string()),
                ("attempt", &attempt.to_string()),
                // PANIC-OK: this attempt's outcome was pushed just above.
                ("outcome", &format!("{:?}", attempts[attempts.len() - 1])),
            ],
        );
    }
    ShardReport {
        index,
        cells,
        attempts,
        status: ShardStatus::Quarantined,
    }
}

/// Runs one worker attempt through the spawner and supervises it.
fn run_attempt(spec: &WorkerSpec, config: &CampaignConfig, spawner: &Spawner) -> AttemptOutcome {
    // A stale heartbeat from the previous attempt must not count as
    // liveness for this one.
    let _ = std::fs::remove_file(&spec.heartbeat_path);
    let (program, args) = match spawner {
        Spawner::InProcess => return in_process_attempt(spec, None),
        Spawner::Process { program, args } => (program, args),
    };
    let mut command = Command::new(program);
    command
        .args(args)
        .envs(spec.to_env())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if ca_obs::trace::enabled() {
        // The worker inherits tracing and flushes its own span events
        // to a per-attempt JSONL file next to the heartbeat; the
        // stitcher later merges every such file into one trace.
        command.env("CA_TRACE", "1").env(
            "CA_OBS_PATH",
            spec.heartbeat_path
                .with_extension(format!("a{}.trace.jsonl", spec.attempt)),
        );
    }
    let spawned = command.spawn();
    let mut child = match spawned {
        Ok(child) => child,
        Err(e) => {
            // The environment cannot spawn processes at all: degrade to
            // in-process execution, loudly.
            ca_obs::global()
                .counter("ca_shard.campaign.spawn_failures", MetricClass::Ops)
                .inc();
            ca_obs::warn(
                "ca_shard.supervisor",
                "cannot spawn worker process; degrading to in-process execution",
                &[
                    ("shard", &spec.shard_index.to_string()),
                    ("error", &e.to_string()),
                ],
            );
            return in_process_attempt(spec, Some(e.to_string()));
        }
    };
    // Watch exit status and heartbeat progress. The monitor classifies
    // each read (fresh / stale / unreadable): a partially-written or
    // briefly unreadable heartbeat file is an observation problem, not
    // proof of a hang, and only a Stale verdict — no progress for the
    // whole timeout — kills the worker.
    let mut monitor = HeartbeatMonitor::new(spec.heartbeat_path.clone(), config.heartbeat_timeout);
    let mut was_unreadable = false;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                return match status.code() {
                    Some(0) => AttemptOutcome::Completed,
                    Some(code) => AttemptOutcome::ExitCode(code),
                    // No code: the worker died to a signal (abort,
                    // SIGKILL, OOM-killer...).
                    None => AttemptOutcome::Killed,
                };
            }
            Ok(None) => {}
            Err(_) => return AttemptOutcome::Killed,
        }
        match monitor.poll() {
            HeartbeatStatus::Fresh => was_unreadable = false,
            HeartbeatStatus::Unreadable => {
                // Counted once per unreadable episode, not per 10 ms
                // poll; the liveness window keeps running unchanged.
                if !was_unreadable {
                    was_unreadable = true;
                    ca_obs::global()
                        .counter("ca_shard.campaign.heartbeat_unreadable", MetricClass::Ops)
                        .inc();
                    ca_obs::warn(
                        "ca_shard.supervisor",
                        "worker heartbeat unreadable; keeping the liveness window open",
                        &[
                            ("shard", &spec.shard_index.to_string()),
                            ("attempt", &spec.attempt.to_string()),
                        ],
                    );
                }
            }
            HeartbeatStatus::Stale => {
                ca_obs::global()
                    .counter("ca_shard.campaign.heartbeat_timeouts", MetricClass::Ops)
                    .inc();
                ca_obs::warn(
                    "ca_shard.supervisor",
                    "worker heartbeat stalled; killing it",
                    &[
                        ("shard", &spec.shard_index.to_string()),
                        ("attempt", &spec.attempt.to_string()),
                    ],
                );
                let _ = child.kill();
                let _ = child.wait();
                return AttemptOutcome::HeartbeatTimeout;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs the worker inside this process (explicit `Spawner::InProcess`
/// or spawn-failure fallback).
fn in_process_attempt(spec: &WorkerSpec, spawn_error: Option<String>) -> AttemptOutcome {
    match (worker::run(spec), spawn_error) {
        (0, None) => AttemptOutcome::Completed,
        (0, Some(_)) => AttemptOutcome::CompletedInProcess,
        (code, None) => AttemptOutcome::ExitCode(code),
        (code, Some(e)) => {
            AttemptOutcome::SpawnFailed(format!("{e}; in-process fallback exited {code}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;

    #[test]
    fn config_rejects_fail_fast_and_zero_attempts() {
        let lib = generate_library(&LibraryConfig::quick(Technology::C40));
        let dir = std::env::temp_dir().join(format!("ca-shard-cfg-{}", std::process::id()));
        let mut config = CampaignConfig::new(2);
        config.retry_policy = FaultPolicy::FailFast;
        let err = run_campaign(&lib, &config, &Spawner::InProcess, &dir).unwrap_err();
        assert!(matches!(err, ShardError::Config(_)), "{err}");

        let mut config = CampaignConfig::new(2);
        config.max_attempts = 0;
        let err = run_campaign(&lib, &config, &Spawner::InProcess, &dir).unwrap_err();
        assert!(matches!(err, ShardError::Config(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_report_renders() {
        let report = CampaignReport {
            shards: vec![ShardReport {
                index: 0,
                cells: vec!["X".into()],
                attempts: vec![AttemptOutcome::Killed, AttemptOutcome::Completed],
                status: ShardStatus::Completed,
            }],
            merge: MergeReport::default(),
            merge_seconds: 0.0,
            retries: 1,
            heartbeat_timeouts: 0,
            spawn_failures: 0,
            quarantined_shards: 0,
            held_back_cells: 0,
        };
        let text = report.render();
        assert!(text.contains("1 retry"), "{text}");
        assert!(text.contains("shard 0: 1 cell(s), 2 attempt(s)"), "{text}");
    }

    #[test]
    fn current_exe_spawner_points_at_this_binary() {
        let Spawner::Process { program, args } =
            Spawner::current_exe(vec!["--x".into()]).expect("current exe")
        else {
            panic!("process spawner expected");
        };
        assert!(program.exists());
        assert_eq!(args, vec!["--x".to_string()]);
    }
}
