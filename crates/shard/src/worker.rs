//! The worker side of a sharded campaign.
//!
//! A worker is any process whose entry point calls [`run_from_env`]:
//! the `ca-bench shard-worker` command, a test binary, a future
//! `ca-serve` executor. With no `CA_SHARD_LIBRARY` in the environment
//! the call is inert (`None`), so host binaries can call it
//! unconditionally. With a spec present, the worker:
//!
//! 1. decodes its shard library ([`crate::codec`]),
//! 2. starts a heartbeat thread that atomically rewrites the heartbeat
//!    file every interval (liveness proof for the supervisor),
//! 3. opens a [`ca_core::Session`] on its private journal and runs the
//!    crash-safe robust driver — so a retried worker resumes from the
//!    records its predecessor got durable before dying,
//! 4. exits 0 on success, or a nonzero code the supervisor treats as a
//!    retryable shard failure.
//!
//! Exit codes: `0` success, `2` bad spec/library, `3` run failure.

use crate::spec::{TestHook, WorkerSpec, ENV_HALT, ENV_TEST_FAIL, ENV_TEST_HANG};
use ca_core::{characterize_library_robust_with_session, CharCache, Session};
use ca_exec::Executor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker success.
pub const EXIT_OK: i32 = 0;
/// The spec or the shard library failed to decode.
pub const EXIT_BAD_SPEC: i32 = 2;
/// The session or the robust driver failed.
pub const EXIT_RUN_FAILED: i32 = 3;

/// Runs as a shard worker if the `CA_SHARD_*` environment says so.
///
/// Returns `None` when the process is not a worker (caller proceeds
/// normally) and `Some(exit_code)` when it is — the caller should
/// `std::process::exit` with that code.
pub fn run_from_env() -> Option<i32> {
    let spec = match WorkerSpec::from_env() {
        Ok(None) => return None,
        Ok(Some(spec)) => spec,
        Err(e) => {
            ca_obs::warn("ca_shard.worker", &format!("bad worker spec: {e}"), &[]);
            return Some(EXIT_BAD_SPEC);
        }
    };
    Some(run(&spec))
}

/// Runs one worker to completion. Factored out of [`run_from_env`] so
/// the supervisor's in-process degraded path can reuse it verbatim.
pub fn run(spec: &WorkerSpec) -> i32 {
    let shard = spec.shard_index.to_string();
    let attempt = spec.attempt.to_string();
    let fields: &[(&str, &str)] = &[("shard", shard.as_str()), ("attempt", attempt.as_str())];

    // Adopt the supervisor's shard-attempt span (carried in the spec
    // across the process boundary) so every span this worker emits —
    // including per-cell spans inside the robust driver — parents into
    // the campaign trace. Inert when the campaign is untraced.
    let _trace_adopt = spec.trace.map(ca_obs::trace::adopt);
    let worker_span = ca_obs::trace::span("worker");

    // The spawned-process path exits immediately after this function
    // returns, so the worker flushes its own buffered events (the
    // supervisor points CA_OBS_PATH at a per-attempt JSONL file).
    let finish = |code: i32, span: ca_obs::trace::TraceSpan| {
        drop(span);
        let _ = ca_obs::flush();
        code
    };

    // Crash-injection hooks, scoped by shard and attempt ceiling.
    let hook = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| TestHook::parse(&v))
            .filter(|h| h.applies(spec.shard_index, spec.attempt))
    };
    if let Some(h) = hook(ENV_TEST_FAIL) {
        ca_obs::warn("ca_shard.worker", "test hook: failing", fields);
        return finish(h.param as i32, worker_span);
    }
    if hook(ENV_TEST_HANG).is_some() {
        // One heartbeat, then silence: the supervisor must diagnose
        // this as a hang (heartbeat timeout) and SIGKILL us.
        let _ = ca_store::write_atomic(&spec.heartbeat_path, b"0\n");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let text = match std::fs::read_to_string(&spec.library_path) {
        Ok(text) => text,
        Err(e) => {
            ca_obs::warn(
                "ca_shard.worker",
                &format!("cannot read shard library: {e}"),
                fields,
            );
            return finish(EXIT_BAD_SPEC, worker_span);
        }
    };
    let library = match crate::codec::decode_library(&text) {
        Ok(lib) => lib,
        Err(e) => {
            ca_obs::warn("ca_shard.worker", &format!("{e}"), fields);
            return finish(EXIT_BAD_SPEC, worker_span);
        }
    };

    let heartbeat = Heartbeat::start(spec);
    let session = match Session::open(&spec.store_path) {
        Ok(session) => session,
        Err(e) => {
            ca_obs::warn(
                "ca_shard.worker",
                &format!("cannot open store: {e}"),
                fields,
            );
            heartbeat.stop();
            return finish(EXIT_RUN_FAILED, worker_span);
        }
    };
    if let Some(h) = hook(ENV_HALT) {
        session.abort_after_journal(h.param as usize);
    }

    let outcome = characterize_library_robust_with_session(
        &library,
        spec.options,
        &spec.budget,
        spec.policy,
        &Executor::from_env(),
        &CharCache::new(),
        &session,
    );
    heartbeat.stop();
    match outcome {
        Ok(_) => finish(EXIT_OK, worker_span),
        Err(e) => {
            ca_obs::warn("ca_shard.worker", &format!("shard run failed: {e}"), fields);
            finish(EXIT_RUN_FAILED, worker_span)
        }
    }
}

/// The liveness thread: rewrites the heartbeat file (atomically, via
/// the durability layer) with an incrementing counter every interval.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(spec: &WorkerSpec) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let path = spec.heartbeat_path.clone();
        let interval = spec.heartbeat_interval.max(Duration::from_millis(1));
        let handle = std::thread::spawn(move || {
            let mut beat = 0u64;
            while !flag.load(Ordering::Relaxed) {
                beat += 1;
                // A failed beat is not fatal here: the supervisor will
                // diagnose the silence as a hang and retry the shard.
                let _ = ca_store::write_atomic(&path, format!("{beat}\n"));
                // Sleep in small slices so stop() returns promptly.
                let mut remaining = interval;
                while !flag.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::FaultPolicy;
    use ca_defects::GenerateOptions;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;
    use ca_sim::SimBudget;
    use std::path::{Path, PathBuf};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ca-shard-worker-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn spec_for(dir: &Path) -> WorkerSpec {
        WorkerSpec {
            library_path: dir.join("shard.lib"),
            store_path: dir.join("shard.caj"),
            heartbeat_path: dir.join("shard.hb"),
            options: GenerateOptions::default(),
            budget: SimBudget::unlimited(),
            policy: FaultPolicy::SkipAndReport,
            shard_index: 0,
            attempt: 1,
            heartbeat_interval: Duration::from_millis(5),
            trace: None,
        }
    }

    #[test]
    fn worker_runs_a_shard_in_process_and_journals() {
        let dir = scratch("run");
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(3);
        let spec = spec_for(&dir);
        ca_store::write_atomic(&spec.library_path, crate::codec::encode_library(&lib))
            .expect("write shard library");
        assert_eq!(run(&spec), EXIT_OK);
        // Every cell journaled; heartbeat file exists and counts up.
        let session = Session::open(&spec.store_path).expect("reopen");
        assert_eq!(session.len(), lib.cells.len());
        let beat = std::fs::read_to_string(&spec.heartbeat_path).expect("heartbeat");
        assert!(beat.trim().parse::<u64>().expect("counter") >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_library_file_is_a_bad_spec() {
        let dir = scratch("missing");
        let spec = spec_for(&dir);
        assert_eq!(run(&spec), EXIT_BAD_SPEC);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_library_is_a_bad_spec() {
        let dir = scratch("garbled");
        let spec = spec_for(&dir);
        ca_store::write_atomic(&spec.library_path, "not a shard library").expect("write");
        assert_eq!(run(&spec), EXIT_BAD_SPEC);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
