//! The supervisor→worker contract: a [`WorkerSpec`] serialized through
//! `CA_SHARD_*` environment variables.
//!
//! Environment variables (not argv) carry the spec so any host binary
//! — the `ca-bench` CLI, a test harness — can expose a worker entry
//! point without argument-parsing coordination: the entry point calls
//! [`crate::worker::run_from_env`], which is inert unless
//! `CA_SHARD_LIBRARY` is set.
//!
//! Three additional hook variables (`CA_SHARD_HALT`,
//! `CA_SHARD_TEST_HANG`, `CA_SHARD_TEST_FAIL`) are crash-injection
//! knobs for the supervision tests, each scoped to a shard index and an
//! attempt ceiling so a retried shard can be made to crash exactly N
//! times and then succeed. They are inert in production campaigns.

use ca_core::FaultPolicy;
use ca_defects::GenerateOptions;
use ca_obs::trace::{self, TraceContext};
use ca_sim::{DetectionPolicy, SimBudget};
use std::path::PathBuf;
use std::time::Duration;

/// Spec env var names, in one place (supervisor writes, worker reads).
pub const ENV_LIBRARY: &str = "CA_SHARD_LIBRARY";
pub const ENV_STORE: &str = "CA_SHARD_STORE";
pub const ENV_HEARTBEAT: &str = "CA_SHARD_HEARTBEAT";
pub const ENV_OPTIONS: &str = "CA_SHARD_OPTIONS";
pub const ENV_BUDGET: &str = "CA_SHARD_BUDGET";
pub const ENV_POLICY: &str = "CA_SHARD_POLICY";
pub const ENV_INDEX: &str = "CA_SHARD_INDEX";
pub const ENV_ATTEMPT: &str = "CA_SHARD_ATTEMPT";
pub const ENV_HB_INTERVAL_MS: &str = "CA_SHARD_HB_INTERVAL_MS";
/// Crash hook: abort after N journal appends (`shard:N@max_attempt`).
pub const ENV_HALT: &str = "CA_SHARD_HALT";
/// Hang hook: stop heartbeating and sleep forever (`shard:0@max_attempt`).
pub const ENV_TEST_HANG: &str = "CA_SHARD_TEST_HANG";
/// Fail hook: exit with code N immediately (`shard:N@max_attempt`).
pub const ENV_TEST_FAIL: &str = "CA_SHARD_TEST_FAIL";

/// Everything one worker process needs to run its shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Path of the shard library document ([`crate::codec`] format).
    pub library_path: PathBuf,
    /// Path of the worker's private `.caj` journal.
    pub store_path: PathBuf,
    /// Path of the heartbeat file the worker must keep rewriting.
    pub heartbeat_path: PathBuf,
    /// Model-generation options (must match the campaign's).
    pub options: GenerateOptions,
    /// Simulation budget (must match the campaign's — records are
    /// tagged with it and re-verified at merge time).
    pub budget: SimBudget,
    /// Per-cell fault policy for this attempt.
    pub policy: FaultPolicy,
    /// This worker's shard index (also scopes the test hooks).
    pub shard_index: usize,
    /// 1-based supervisor attempt number.
    pub attempt: u32,
    /// How often the worker rewrites the heartbeat file.
    pub heartbeat_interval: Duration,
    /// Trace context of the supervisor's shard-attempt span, so worker
    /// spans parent under it across the process boundary. `None` when
    /// the campaign is untraced.
    pub trace: Option<TraceContext>,
}

impl WorkerSpec {
    /// The spec as env `(name, value)` pairs for `Command::envs`.
    pub fn to_env(&self) -> Vec<(String, String)> {
        let mut env = vec![
            (ENV_LIBRARY.into(), self.library_path.display().to_string()),
            (ENV_STORE.into(), self.store_path.display().to_string()),
            (
                ENV_HEARTBEAT.into(),
                self.heartbeat_path.display().to_string(),
            ),
            (ENV_OPTIONS.into(), encode_options(self.options)),
            (ENV_BUDGET.into(), encode_budget(&self.budget)),
            (ENV_POLICY.into(), encode_policy(self.policy)),
            (ENV_INDEX.into(), self.shard_index.to_string()),
            (ENV_ATTEMPT.into(), self.attempt.to_string()),
            (
                ENV_HB_INTERVAL_MS.into(),
                self.heartbeat_interval.as_millis().to_string(),
            ),
        ];
        if let Some(ctx) = &self.trace {
            env.extend(trace::context_to_env(ctx));
        }
        env
    }

    /// Reads a spec from the process environment. `Ok(None)` when
    /// `CA_SHARD_LIBRARY` is unset — the caller is not a worker.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed or missing variable.
    pub fn from_env() -> Result<Option<WorkerSpec>, String> {
        WorkerSpec::from_lookup(|name| std::env::var(name).ok())
    }

    /// [`WorkerSpec::from_env`] over an arbitrary lookup (testable
    /// without mutating process-global state).
    ///
    /// # Errors
    ///
    /// A message naming the first malformed or missing variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<Option<WorkerSpec>, String> {
        let Some(library) = lookup(ENV_LIBRARY) else {
            return Ok(None);
        };
        let need = |name: &str| lookup(name).ok_or_else(|| format!("{name} is not set"));
        let parse_num = |name: &str| -> Result<u64, String> {
            need(name)?
                .parse()
                .map_err(|_| format!("{name} is not a number"))
        };
        Ok(Some(WorkerSpec {
            library_path: PathBuf::from(library),
            store_path: PathBuf::from(need(ENV_STORE)?),
            heartbeat_path: PathBuf::from(need(ENV_HEARTBEAT)?),
            options: decode_options(&need(ENV_OPTIONS)?)?,
            budget: decode_budget(&need(ENV_BUDGET)?)?,
            policy: decode_policy(&need(ENV_POLICY)?)?,
            shard_index: parse_num(ENV_INDEX)? as usize,
            attempt: parse_num(ENV_ATTEMPT)? as u32,
            heartbeat_interval: Duration::from_millis(parse_num(ENV_HB_INTERVAL_MS)?),
            trace: {
                // Optional trio: absent (untraced campaign) is fine, a
                // partially-present or malformed trio is ignored the
                // same way — tracing is best-effort, never a reason to
                // fail a shard.
                let read = |name: &str| lookup(name).and_then(|v| trace::parse_id(&v));
                match (
                    read(trace::ENV_TRACE_ID),
                    read(trace::ENV_TRACE_SPAN),
                    read(trace::ENV_TRACE_SEED),
                ) {
                    (Some(trace_id), Some(span_id), Some(child_seed)) => Some(TraceContext {
                        trace_id,
                        span_id,
                        child_seed,
                    }),
                    _ => None,
                }
            },
        }))
    }
}

/// Three bits, bit-packed like `ca_core`'s options tag: trivially
/// collision-free and stable.
fn encode_options(options: GenerateOptions) -> String {
    let bits = u8::from(options.policy.driven_x_detects)
        | u8::from(options.policy.floating_x_detects) << 1
        | u8::from(options.inter_transistor) << 2;
    bits.to_string()
}

fn decode_options(s: &str) -> Result<GenerateOptions, String> {
    let bits: u8 = s
        .parse()
        .map_err(|_| format!("{ENV_OPTIONS} is not a number"))?;
    if bits > 0b111 {
        return Err(format!("{ENV_OPTIONS} out of range: {bits}"));
    }
    Ok(GenerateOptions {
        policy: DetectionPolicy {
            driven_x_detects: bits & 1 != 0,
            floating_x_detects: bits & 2 != 0,
        },
        inter_transistor: bits & 4 != 0,
    })
}

/// `iters,stimuli,defects,wall_ns` with `-` for "unlimited".
fn encode_budget(budget: &SimBudget) -> String {
    let field = |v: Option<u128>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    format!(
        "{},{},{},{}",
        field(budget.max_solver_iterations.map(|v| v as u128)),
        field(budget.max_stimuli.map(|v| v as u128)),
        field(budget.max_defects.map(|v| v as u128)),
        field(budget.wall_clock.map(|d| d.as_nanos())),
    )
}

fn decode_budget(s: &str) -> Result<SimBudget, String> {
    let fields: Vec<&str> = s.split(',').collect();
    let [iters, stimuli, defects, wall] = fields[..] else {
        return Err(format!("{ENV_BUDGET} needs 4 comma-separated fields"));
    };
    let opt = |f: &str| -> Result<Option<u128>, String> {
        if f == "-" {
            Ok(None)
        } else {
            f.parse()
                .map(Some)
                .map_err(|_| format!("{ENV_BUDGET} field `{f}` is not a number"))
        }
    };
    Ok(SimBudget {
        max_solver_iterations: opt(iters)?.map(|v| v as usize),
        max_stimuli: opt(stimuli)?.map(|v| v as usize),
        max_defects: opt(defects)?.map(|v| v as usize),
        wall_clock: opt(wall)?.map(|ns| Duration::from_nanos(ns as u64)),
    })
}

fn encode_policy(policy: FaultPolicy) -> String {
    match policy {
        // FailFast cannot run a campaign (the supervisor rejects it),
        // so the wire format only carries the quarantining policies.
        FaultPolicy::FailFast | FaultPolicy::SkipAndReport => "skip".to_string(),
        FaultPolicy::RetryWithReducedBudget(n) => format!("retry:{n}"),
    }
}

fn decode_policy(s: &str) -> Result<FaultPolicy, String> {
    if s == "skip" {
        return Ok(FaultPolicy::SkipAndReport);
    }
    if let Some(n) = s.strip_prefix("retry:") {
        let n: u32 = n
            .parse()
            .map_err(|_| format!("{ENV_POLICY} retry count `{n}` is not a number"))?;
        return Ok(FaultPolicy::RetryWithReducedBudget(n));
    }
    Err(format!(
        "{ENV_POLICY} must be `skip` or `retry:N`, got `{s}`"
    ))
}

/// A parsed test hook: applies to `shard` while `attempt <=
/// max_attempt`, carrying one numeric parameter (append count for the
/// halt hook, exit code for the fail hook, ignored for the hang hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestHook {
    /// Shard the hook fires in.
    pub shard: usize,
    /// Hook parameter.
    pub param: u32,
    /// Last attempt (1-based, inclusive) the hook still fires on.
    pub max_attempt: u32,
}

impl TestHook {
    /// Parses `shard:param@max_attempt`.
    pub fn parse(s: &str) -> Option<TestHook> {
        let (head, max_attempt) = s.split_once('@')?;
        let (shard, param) = head.split_once(':')?;
        Some(TestHook {
            shard: shard.parse().ok()?,
            param: param.parse().ok()?,
            max_attempt: max_attempt.parse().ok()?,
        })
    }

    /// Whether the hook fires for this worker invocation.
    pub fn applies(&self, shard: usize, attempt: u32) -> bool {
        self.shard == shard && attempt <= self.max_attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_spec() -> WorkerSpec {
        WorkerSpec {
            library_path: PathBuf::from("/tmp/shard-2.lib"),
            store_path: PathBuf::from("/tmp/shard-2.caj"),
            heartbeat_path: PathBuf::from("/tmp/shard-2.hb"),
            options: GenerateOptions {
                policy: DetectionPolicy {
                    driven_x_detects: true,
                    floating_x_detects: false,
                },
                inter_transistor: true,
            },
            budget: SimBudget {
                max_solver_iterations: None,
                max_stimuli: Some(64),
                max_defects: None,
                wall_clock: Some(Duration::from_millis(1500)),
            },
            policy: FaultPolicy::RetryWithReducedBudget(2),
            shard_index: 2,
            attempt: 3,
            heartbeat_interval: Duration::from_millis(50),
            trace: Some(TraceContext {
                trace_id: 0xdead_beef_0000_0001,
                span_id: 0x0123_4567_89ab_cdef,
                child_seed: 42,
            }),
        }
    }

    #[test]
    fn spec_round_trips_through_env_pairs() {
        let spec = sample_spec();
        let env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        let decoded = WorkerSpec::from_lookup(|name| env.get(name).cloned())
            .expect("decode")
            .expect("library var present");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn untraced_spec_round_trips_without_trace_vars() {
        let mut spec = sample_spec();
        spec.trace = None;
        let env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        assert!(!env.contains_key(trace::ENV_TRACE_ID));
        let decoded = WorkerSpec::from_lookup(|name| env.get(name).cloned())
            .expect("decode")
            .expect("present");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn skip_policy_round_trips() {
        let mut spec = sample_spec();
        spec.policy = FaultPolicy::SkipAndReport;
        let env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        let decoded = WorkerSpec::from_lookup(|name| env.get(name).cloned())
            .expect("decode")
            .expect("present");
        assert_eq!(decoded.policy, FaultPolicy::SkipAndReport);
    }

    #[test]
    fn absent_library_var_means_not_a_worker() {
        assert_eq!(WorkerSpec::from_lookup(|_| None), Ok(None));
    }

    #[test]
    fn missing_and_malformed_vars_are_named() {
        let spec = sample_spec();
        let mut env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        env.remove(ENV_BUDGET);
        let err = WorkerSpec::from_lookup(|n| env.get(n).cloned()).unwrap_err();
        assert!(err.contains(ENV_BUDGET), "{err}");

        let mut env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        env.insert(ENV_OPTIONS.into(), "99".into());
        let err = WorkerSpec::from_lookup(|n| env.get(n).cloned()).unwrap_err();
        assert!(err.contains(ENV_OPTIONS), "{err}");

        let mut env: BTreeMap<String, String> = spec.to_env().into_iter().collect();
        env.insert(ENV_POLICY.into(), "explode".into());
        let err = WorkerSpec::from_lookup(|n| env.get(n).cloned()).unwrap_err();
        assert!(err.contains(ENV_POLICY), "{err}");
    }

    #[test]
    fn test_hooks_parse_and_scope() {
        let hook = TestHook::parse("2:5@3").expect("parse");
        assert_eq!(
            hook,
            TestHook {
                shard: 2,
                param: 5,
                max_attempt: 3
            }
        );
        assert!(hook.applies(2, 1));
        assert!(hook.applies(2, 3));
        assert!(!hook.applies(2, 4));
        assert!(!hook.applies(1, 1));
        assert_eq!(TestHook::parse("nonsense"), None);
        assert_eq!(TestHook::parse("1:2"), None);
    }
}
