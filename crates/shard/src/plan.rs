//! Deterministic shard planning.
//!
//! A cell's shard is `fnv1a(cell_name) % shards` — a pure function of
//! the canonical cell key and the shard count. Nothing else enters:
//! not library order, not retry history, not which shard launched
//! first. A retried shard therefore re-receives exactly the cells it
//! had, and a merged campaign is comparable across runs cell-by-cell.

use ca_netlist::library::Library;

/// FNV-1a over a byte string (the workspace's standard cheap stable
/// hash; see `ca_core::session` for the framed variant).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The shard index of `cell_name` under `shards` shards.
pub fn shard_of(cell_name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fnv1a(cell_name.as_bytes()) % shards.max(1) as u64) as usize
}

/// A partition of library cell indices into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards[i]` holds the library indices of shard `i`'s cells, in
    /// library order. Shards may be empty.
    pub shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `library` into `shards` shards (at least 1).
    pub fn partition(library: &Library, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let mut plan = vec![Vec::new(); shards];
        for (i, lc) in library.cells.iter().enumerate() {
            // PANIC-OK: shard_of reduces modulo `shards` == plan.len().
            plan[shard_of(lc.cell.name(), shards)].push(i);
        }
        ShardPlan { shards: plan }
    }

    /// Number of non-empty shards.
    pub fn populated(&self) -> usize {
        self.shards.iter().filter(|s| !s.is_empty()).count()
    }

    /// The sub-library of shard `index` (cells cloned in library order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a shard of this plan or if `library` is
    /// not the library the plan partitioned.
    pub fn shard_library(&self, library: &Library, index: usize) -> Library {
        Library {
            technology: library.technology,
            // PANIC-OK: documented contract — `index` names a shard of
            // this plan.
            // PANIC-OK: plan entries index the partitioned library.
            cells: self.shards[index]
                .iter()
                .map(|&i| library.cells[i].clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::library::{generate_library, LibraryConfig};
    use ca_netlist::Technology;

    #[test]
    fn assignment_is_stable_under_library_order() {
        let lib = generate_library(&LibraryConfig::quick(Technology::C40));
        let mut reversed = lib.clone();
        reversed.cells.reverse();
        for shards in [1, 2, 3, 7] {
            for lc in &lib.cells {
                assert_eq!(
                    shard_of(lc.cell.name(), shards),
                    shard_of(lc.cell.name(), shards)
                );
            }
            let a = ShardPlan::partition(&lib, shards);
            let b = ShardPlan::partition(&reversed, shards);
            // Same cells per shard regardless of library order.
            for s in 0..shards {
                let names = |plan: &ShardPlan, lib: &Library| {
                    let mut v: Vec<String> = plan.shards[s]
                        .iter()
                        .map(|&i| lib.cells[i].cell.name().to_string())
                        .collect();
                    v.sort();
                    v
                };
                assert_eq!(names(&a, &lib), names(&b, &reversed), "shard {s}");
            }
        }
    }

    #[test]
    fn partition_covers_every_cell_exactly_once() {
        let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
        let plan = ShardPlan::partition(&lib, 4);
        let mut seen: Vec<usize> = plan.shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..lib.cells.len()).collect();
        assert_eq!(seen, expect);
        assert!(plan.populated() >= 2, "quick library spreads over shards");
    }

    #[test]
    fn shard_library_preserves_library_order() {
        let lib = generate_library(&LibraryConfig::quick(Technology::C40));
        let plan = ShardPlan::partition(&lib, 3);
        for s in 0..3 {
            let sub = plan.shard_library(&lib, s);
            let names: Vec<&str> = sub.cells.iter().map(|lc| lc.cell.name()).collect();
            let expect: Vec<&str> = plan.shards[s]
                .iter()
                .map(|&i| lib.cells[i].cell.name())
                .collect();
            assert_eq!(names, expect);
            assert_eq!(sub.technology, lib.technology);
        }
    }

    #[test]
    fn one_shard_is_the_whole_library() {
        let lib = generate_library(&LibraryConfig::quick(Technology::C28));
        let plan = ShardPlan::partition(&lib, 1);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].len(), lib.cells.len());
    }
}
