//! Tiny deterministic PRNGs shared by the workspace.
//!
//! The workspace needs *reproducible* randomness (library synthesis,
//! forest bagging, fuzz loops) but not cryptographic quality, and it must
//! build with zero network access — so instead of the external `rand`
//! crate we carry the two classic generators in-tree:
//!
//! - [`SplitMix64`] — the 64-bit mixer from Steele/Lea/Flood, used both as
//!   a stand-alone stream and to seed the main generator;
//! - [`Xoshiro256StarStar`] — Blackman/Vigna's general-purpose generator,
//!   the same algorithm `rand`'s `StdRng`-class generators are built on.
//!
//! Both are seeded explicitly; the same seed always yields the same
//! stream, on every platform.

/// The SplitMix64 generator: one 64-bit word of state, invertible output
/// mixing. Ideal for seeding and for cheap inline streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator (Blackman & Vigna, 2018).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from `seed` via SplitMix64, as the
    /// reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The operations the workspace actually uses, implemented for both
/// generators.
pub trait Rng {
    /// Next raw 64-bit value.
    fn gen_u64(&mut self) -> u64;

    /// Uniform index in `0..n`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is
    /// negligible for the `n` values used here (≤ millions).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index requires a non-empty range");
        (((self.gen_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self) -> bool {
        self.gen_u64() & 1 == 1
    }

    /// In-place Fisher-Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

impl Rng for SplitMix64 {
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Rng for Xoshiro256StarStar {
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the published
        // splitmix64.c test harness.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_and_distinct_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        let mut c = Xoshiro256StarStar::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_index_stays_in_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_index(n) < n);
            }
        }
    }

    #[test]
    fn gen_index_covers_all_buckets() {
        let mut rng = SplitMix64::new(99);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 items should move something");
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_index_rejects_zero() {
        let mut rng = SplitMix64::new(0);
        let _ = rng.gen_index(0);
    }
}
