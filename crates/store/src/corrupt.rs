//! Deterministic store-corruption helpers for fault-injection tests.
//!
//! The mirror image of `ca_netlist::corrupt`, one layer down: where that
//! module damages *netlists* to exercise the robust characterization
//! pipeline, this one damages the *journal file* to exercise
//! [`Store::open`](crate::Store::open)'s recovery path. All helpers are
//! deterministic (seeded where randomness is involved) so failing tests
//! reproduce exactly.

use ca_rng::SplitMix64;
// ca-audit: allow(D4, importing the raw-write primitive the harness wraps)
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Truncates the file to `len` bytes (a crash that lost the tail).
///
/// # Errors
///
/// I/O failures opening or truncating the file.
pub fn truncate_at(path: impl AsRef<Path>, len: u64) -> io::Result<()> {
    // ca-audit: allow(D4, deliberate corruption harness)
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)
}

/// Flips bit `bit` (0..8) of the byte at `offset` (media bit rot).
///
/// # Errors
///
/// I/O failures, or an offset past the end of the file.
pub fn bit_flip(path: impl AsRef<Path>, offset: u64, bit: u8) -> io::Result<()> {
    // ca-audit: allow(D4, deliberate corruption harness)
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 1 << (bit % 8);
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)
}

/// Appends `count` pseudo-random bytes drawn from `seed` (a foreign
/// writer, or a crash that flushed unrelated buffers into the journal).
///
/// # Errors
///
/// I/O failures opening or writing the file.
pub fn garbage_append(path: impl AsRef<Path>, seed: u64, count: usize) -> io::Result<()> {
    let mut rng = SplitMix64::new(seed);
    let bytes: Vec<u8> = (0..count).map(|_| rng.next_u64() as u8).collect();
    // ca-audit: allow(D4, deliberate corruption harness)
    let mut file = OpenOptions::new().append(true).open(path)?;
    file.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_what_they_say() {
        let dir = std::env::temp_dir().join(format!("ca-store-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim");
        // ca-audit: allow(D4, deliberate corruption harness)
        std::fs::write(&path, [0u8; 16]).unwrap();
        truncate_at(&path, 10).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 10);
        bit_flip(&path, 3, 1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0b10);
        garbage_append(&path, 7, 6).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 16);
        // Deterministic: same seed, same garbage.
        let mut rng = SplitMix64::new(7);
        let expected: Vec<u8> = (0..6).map(|_| rng.next_u64() as u8).collect();
        assert_eq!(&bytes[10..], &expected[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
