//! Crash-safe journaled on-disk store of CA models.
//!
//! The paper's premise is that a *large database of CA models* built up
//! over past libraries is the asset everything else trains on — so losing
//! a multi-hour characterization run to a crash is not an option. This
//! crate provides the durability layer:
//!
//! - an **append-only journal**: a versioned header followed by
//!   length + CRC32 framed records, one per characterized cell. Each
//!   record carries the cell name, the canonical triple hashes, a netlist
//!   fingerprint, generation-option/budget tags and either a `.cam`
//!   payload or a quarantine verdict;
//! - **torn-write recovery**: [`Store::open`] replays the journal and, on
//!   the first invalid frame (truncated tail, CRC mismatch, undecodable
//!   payload), truncates the file back to the last valid record. The
//!   damage is *reported* via [`RecoveryReport`], never served;
//! - **atomic snapshot compaction**: [`Store::compact`] rewrites the live
//!   record set through the same tmp → fsync → rename → fsync-dir dance
//!   as [`write_atomic`], collapsing duplicates and reclaiming space;
//! - [`write_atomic`], the shared crash-safe file write used for every
//!   file emission in the workspace (`.cam` exports, `BENCH_*.json`);
//! - deterministic [`corrupt`]ion helpers for fault-injection tests.
//!
//! The store knows nothing about netlists or models: hashes and tags are
//! opaque `u64`s and the model body is an opaque string, so the crate has
//! no workspace dependencies beyond the in-tree RNG (used only by the
//! corruption helpers). Semantics — which hash means what, when a record
//! may be reused — live in `ca-core`'s session layer.
//!
//! CRC framing is an *integrity* check against torn writes and bit rot,
//! not authentication: an adversary who can rewrite records and their
//! CRCs is outside the threat model (the session layer still re-verifies
//! every record against the live netlist before reuse).

// A store error mid-run must surface as a report, never abort the batch.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fmt;
// ca-audit: allow(D4, importing the raw-write primitives this crate wraps)
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub mod corrupt;
pub mod frame;

/// 8-byte file magic; the trailing byte is the format version.
pub const MAGIC: [u8; 8] = *b"CASTOR\x00\x01";

/// Size of the file header (just the magic + version).
pub const HEADER_LEN: u64 = 8;

/// Sanity cap on a single record payload; a frame length above this is
/// treated as corruption rather than attempted (protects replay from a
/// garbage length field that happens to fit in the file).
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------
// CRC32 (IEEE), table-driven, computed at compile time
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the polynomial used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// Outcome body of a journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A complete (never budget-truncated) model; `cam` is the `.cam`
    /// document. Eligible for cache donation after re-verification.
    Complete {
        /// The `.cam` document of the model.
        cam: String,
    },
    /// A model produced under a reduced budget. Journaled with its
    /// budget-outcome tag so a resumed run can serve it back to the *same*
    /// cell, but never used as a cache donor.
    Degraded {
        /// The `.cam` document of the (degraded) model.
        cam: String,
    },
    /// A cell the robust pipeline quarantined; replaying the verdict lets
    /// a resumed run skip the (possibly expensive) failure re-diagnosis.
    Quarantined {
        /// Failure phase, encoded by the session layer.
        phase: u8,
        /// Reduced-budget retries that were attempted.
        retries: u32,
        /// Human-readable failure reason.
        reason: String,
    },
}

impl Payload {
    fn tag(&self) -> u8 {
        match self {
            Payload::Complete { .. } => 0,
            Payload::Degraded { .. } => 1,
            Payload::Quarantined { .. } => 2,
        }
    }
}

/// One per-cell characterization record.
///
/// The hash fields are opaque to the store; the session layer writes the
/// canonical triple (`structure`/`wiring`/`reduced`), a whole-netlist
/// `fingerprint`, and tags derived from the generation options and the
/// simulation budget, and re-verifies all of them before reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Cell name (the lookup key; duplicates are last-writer-wins).
    pub cell: String,
    /// Canonical structure hash (0 when unavailable, e.g. quarantined).
    pub structure: u64,
    /// Canonical wiring hash.
    pub wiring: u64,
    /// Canonical reduced hash.
    pub reduced: u64,
    /// Whole-netlist fingerprint (covers sizes, names, connectivity).
    pub fingerprint: u64,
    /// Tag of the generation options the record was produced under.
    pub options_tag: u64,
    /// Tag of the simulation budget the record was produced under.
    pub budget_tag: u64,
    /// Outcome body.
    pub payload: Payload,
}

impl Record {
    fn encode(&self) -> Result<Vec<u8>, String> {
        let mut out = Vec::with_capacity(64 + self.cell.len());
        out.push(self.payload.tag());
        let name = self.cell.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(format!("cell name too long ({} bytes)", name.len()));
        }
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        for word in [
            self.structure,
            self.wiring,
            self.reduced,
            self.fingerprint,
            self.options_tag,
            self.budget_tag,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        match &self.payload {
            Payload::Complete { cam } | Payload::Degraded { cam } => {
                let cam = cam.as_bytes();
                if cam.len() > MAX_PAYLOAD as usize {
                    return Err(format!("cam body too long ({} bytes)", cam.len()));
                }
                out.extend_from_slice(&(cam.len() as u32).to_le_bytes());
                out.extend_from_slice(cam);
            }
            Payload::Quarantined {
                phase,
                retries,
                reason,
            } => {
                out.push(*phase);
                out.extend_from_slice(&retries.to_le_bytes());
                let reason = reason.as_bytes();
                if reason.len() > u16::MAX as usize {
                    return Err(format!("reason too long ({} bytes)", reason.len()));
                }
                out.extend_from_slice(&(reason.len() as u16).to_le_bytes());
                out.extend_from_slice(reason);
            }
        }
        Ok(out)
    }

    fn decode(bytes: &[u8]) -> Result<Record, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let tag = cur.u8()?;
        let name_len = cur.u16()? as usize;
        let cell = cur.str(name_len)?;
        let structure = cur.u64()?;
        let wiring = cur.u64()?;
        let reduced = cur.u64()?;
        let fingerprint = cur.u64()?;
        let options_tag = cur.u64()?;
        let budget_tag = cur.u64()?;
        let payload = match tag {
            0 | 1 => {
                let cam_len = cur.u32()?;
                if cam_len > MAX_PAYLOAD {
                    return Err(format!("cam length {cam_len} exceeds sanity cap"));
                }
                let cam = cur.str(cam_len as usize)?;
                if tag == 0 {
                    Payload::Complete { cam }
                } else {
                    Payload::Degraded { cam }
                }
            }
            2 => {
                let phase = cur.u8()?;
                let retries = cur.u32()?;
                let reason_len = cur.u16()? as usize;
                let reason = cur.str(reason_len)?;
                Payload::Quarantined {
                    phase,
                    retries,
                    reason,
                }
            }
            other => return Err(format!("unknown record tag {other}")),
        };
        if cur.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after record body",
                bytes.len() - cur.pos
            ));
        }
        Ok(Record {
            cell,
            structure,
            wiring,
            reduced,
            fingerprint,
            options_tag,
            budget_tag,
            payload,
        })
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(b);
        Ok(u64::from_le_bytes(word))
    }

    fn str(&mut self, n: usize) -> Result<String, String> {
        let bytes = self.take(n)?.to_vec();
        String::from_utf8(bytes).map_err(|_| "non-UTF-8 string field".to_string())
    }
}

// ---------------------------------------------------------------------
// Recovery reporting
// ---------------------------------------------------------------------

/// What kind of damage recovery found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The file header is missing, short, or carries the wrong
    /// magic/version; the store was reset to a fresh header.
    BadHeader,
    /// The tail holds a frame header or body shorter than its declared
    /// length (the classic torn write).
    TornFrame,
    /// A frame's payload does not match its CRC32.
    CrcMismatch,
    /// A CRC-valid frame whose payload does not decode (foreign or
    /// half-written bytes that happened to checksum).
    BadPayload,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionKind::BadHeader => write!(f, "bad header"),
            CorruptionKind::TornFrame => write!(f, "torn frame"),
            CorruptionKind::CrcMismatch => write!(f, "CRC mismatch"),
            CorruptionKind::BadPayload => write!(f, "undecodable payload"),
        }
    }
}

/// One corruption event found (and neutralized) during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionEvent {
    /// Byte offset of the first invalid frame.
    pub offset: u64,
    /// Classification of the damage.
    pub kind: CorruptionKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for CorruptionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}: {}", self.kind, self.offset, self.detail)
    }
}

/// Outcome of replaying the journal on open. Corruption here is *news*,
/// not failure: the store truncated the damage away and is consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames that replayed cleanly.
    pub valid_records: usize,
    /// Cells that appeared more than once (superseded, last-writer-wins).
    pub duplicates: usize,
    /// The first invalid frame, if any (replay stops there).
    pub corruption: Option<CorruptionEvent>,
    /// Bytes discarded when truncating past the last valid record.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// Whether the journal replayed without any damage.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }

    /// Renders a one-line summary.
    pub fn render(&self) -> String {
        match &self.corruption {
            None => format!(
                "store: {} record(s), {} superseded, clean",
                self.valid_records, self.duplicates
            ),
            Some(ev) => format!(
                "store: {} record(s), {} superseded, RECOVERED from {} ({} byte(s) truncated)",
                self.valid_records, self.duplicates, ev, self.truncated_bytes
            ),
        }
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// Plain I/O counters a [`Store`] keeps about itself: journal appends,
/// fsyncs, compactions and evictions, plus the recovery truncation from
/// open. Kept as ordinary fields (not an observability dependency) so
/// this crate stays at the bottom of the workspace graph; the session
/// layer lifts them into the `ca-obs` metric registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Frames appended to the journal.
    pub appends: u64,
    /// Bytes written by those appends (frame headers included).
    pub append_bytes: u64,
    /// `fsync`/`fdatasync` calls issued (header writes, appends,
    /// recovery truncations).
    pub fsyncs: u64,
    /// Snapshot compactions completed.
    pub compactions: u64,
    /// Records dropped from the live view by [`Store::evict`].
    pub evictions: u64,
    /// Bytes discarded by torn-tail/corruption truncation at open.
    pub recovery_truncated_bytes: u64,
}

/// A journaled on-disk store of per-cell characterization records.
///
/// Opening replays the journal (recovering from any torn tail), appends
/// are fsynced frames, and [`compact`](Store::compact) atomically rewrites
/// the live snapshot. See the module docs for the format.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    live: BTreeMap<String, Record>,
    recovery: RecoveryReport,
    stats: StoreStats,
}

impl Store {
    /// Opens (or creates) the store at `path`, replaying the journal.
    ///
    /// Any invalid tail is truncated away and reported via
    /// [`recovery`](Store::recovery); it is never served as a record.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, missing parent directory);
    /// corruption is recovered from, not failed on.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        // ca-audit: allow(D4, the journal open/append path is the durability primitive itself)
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut recovery = RecoveryReport::default();
        let mut stats = StoreStats::default();
        let mut live = BTreeMap::new();
        if bytes.is_empty() {
            // Fresh store: persist the header (and its directory entry)
            // immediately so a crash right after creation replays cleanly.
            file.write_all(&MAGIC)?;
            file.sync_all()?;
            stats.fsyncs += 2; // header + parent directory
            sync_parent_dir(&path);
        } else if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
            recovery.corruption = Some(CorruptionEvent {
                offset: 0,
                kind: CorruptionKind::BadHeader,
                detail: "magic/version mismatch; store reset".to_string(),
            });
            recovery.truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&MAGIC)?;
            file.sync_all()?;
            stats.fsyncs += 1;
        } else {
            let mut offset = HEADER_LEN as usize;
            while offset < bytes.len() {
                match replay_frame(&bytes, offset) {
                    Ok((record, next)) => {
                        if live.insert(record.cell.clone(), record).is_some() {
                            recovery.duplicates += 1;
                        }
                        recovery.valid_records += 1;
                        offset = next;
                    }
                    Err(event) => {
                        recovery.truncated_bytes = (bytes.len() - offset) as u64;
                        recovery.corruption = Some(event);
                        file.set_len(offset as u64)?;
                        file.sync_all()?;
                        stats.fsyncs += 1;
                        break;
                    }
                }
            }
        }
        file.seek(SeekFrom::End(0))?;
        stats.recovery_truncated_bytes = recovery.truncated_bytes;
        Ok(Store {
            path,
            file,
            live,
            recovery,
            stats,
        })
    }

    /// I/O counters accumulated by this handle (appends, fsyncs,
    /// compactions, evictions, recovery truncation).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The replay/recovery outcome of [`open`](Store::open).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Path the store lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Live records (last writer wins), keyed and ordered by cell name.
    pub fn records(&self) -> &BTreeMap<String, Record> {
        &self.live
    }

    /// The live record for `cell`, if any.
    pub fn get(&self, cell: &str) -> Option<&Record> {
        self.live.get(cell)
    }

    /// Number of live (deduplicated) records.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Appends `record` to the journal and fsyncs it. The write is
    /// framed, so a crash mid-append leaves at worst a torn tail that the
    /// next [`open`](Store::open) truncates away.
    ///
    /// # Errors
    ///
    /// I/O failures, or a record with an over-long field.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record
            .encode()
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        let frame = frame::encode(&payload);
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.stats.appends += 1;
        self.stats.append_bytes += frame.len() as u64;
        self.stats.fsyncs += 1;
        self.live.insert(record.cell.clone(), record.clone());
        Ok(())
    }

    /// Drops `cell`'s record from the live view (it stays in the journal
    /// until the next [`compact`](Store::compact)). Used by the session
    /// layer to evict stale records whose hashes no longer match.
    pub fn evict(&mut self, cell: &str) -> bool {
        let evicted = self.live.remove(cell).is_some();
        if evicted {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Atomically rewrites the journal as a snapshot of the live records
    /// (deduplicated, in name order): tmp file in the same directory →
    /// fsync → rename over the journal → fsync directory. A crash at any
    /// point leaves either the old or the new journal, never a mix.
    ///
    /// # Errors
    ///
    /// I/O failures; the original journal is untouched on error.
    pub fn compact(&mut self) -> io::Result<()> {
        let mut snapshot = Vec::with_capacity(HEADER_LEN as usize);
        snapshot.extend_from_slice(&MAGIC);
        for record in self.live.values() {
            let payload = record
                .encode()
                .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
            snapshot.extend_from_slice(&frame::encode(&payload));
        }
        write_atomic(&self.path, &snapshot)?;
        // The old handle points at the replaced inode; reopen.
        // ca-audit: allow(D4, reopening the compacted journal inode for appends)
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.stats.compactions += 1;
        self.stats.fsyncs += 2; // write_atomic: tmp file + parent dir
        Ok(())
    }
}

/// Replays one frame at `offset`; returns the record and the next offset.
///
/// The byte-level framing lives in [`frame`] (shared with the `ca-serve`
/// wire protocol); this function maps its errors onto the journal's
/// recovery taxonomy: a torn or over-long frame is a torn tail, a CRC
/// failure is bit rot, and only a frame that passes both can fail as
/// [`CorruptionKind::BadPayload`].
fn replay_frame(bytes: &[u8], offset: usize) -> Result<(Record, usize), CorruptionEvent> {
    let at = |kind, detail: String| CorruptionEvent {
        offset: offset as u64,
        kind,
        detail,
    };
    let (payload, next) = match frame::decode(bytes, offset, MAX_PAYLOAD) {
        Ok(ok) => ok,
        Err(e @ frame::FrameError::CrcMismatch { .. }) => {
            return Err(at(CorruptionKind::CrcMismatch, e.to_string()))
        }
        Err(e) => return Err(at(CorruptionKind::TornFrame, e.to_string())),
    };
    match Record::decode(payload) {
        Ok(record) => Ok((record, next)),
        Err(msg) => Err(at(CorruptionKind::BadPayload, msg)),
    }
}

// ---------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------

/// Crash-safe whole-file write: tmp file in the same directory → fsync →
/// rename over `path` → fsync directory. Readers see either the old
/// contents or the new, never a torn mix; a crash leaves at worst a stale
/// `.tmp` file.
///
/// # Errors
///
/// I/O failures creating, writing, fsyncing or renaming the tmp file (a
/// failure to fsync the *directory* is tolerated: some filesystems refuse
/// directory handles, and the rename itself is already durable there).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        // ca-audit: allow(D4, write_atomic is the sanctioned tmp+rename+fsync primitive)
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    sync_parent_dir(path);
    Ok(())
}

/// Fsyncs the directory holding `path`, making a freshly renamed or
/// created entry durable. Best-effort: failures are ignored (see
/// [`write_atomic`]).
fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Self-cleaning temp dir (no external tempfile crate).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("ca-store-test-{}-{tag}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn record(cell: &str, structure: u64, cam: &str) -> Record {
        Record {
            cell: cell.to_string(),
            structure,
            wiring: structure ^ 0xAB,
            reduced: structure ^ 0xCD,
            fingerprint: structure.wrapping_mul(31),
            options_tag: 5,
            budget_tag: 7,
            payload: Payload::Complete {
                cam: cam.to_string(),
            },
        }
    }

    #[test]
    fn store_stats_count_io() {
        let tmp = TempDir::new("stats");
        let path = tmp.path("store.caj");
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.stats().fsyncs, 2, "fresh header + parent dir");
        store.append(&record("a", 1, "CAM-A")).unwrap();
        store.append(&record("b", 2, "CAM-B")).unwrap();
        let stats = store.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.fsyncs, 4);
        assert!(stats.append_bytes > 16, "two framed payloads");
        assert!(store.evict("a"));
        assert!(!store.evict("a"));
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!((stats.evictions, stats.compactions), (1, 1));
        assert_eq!(stats.recovery_truncated_bytes, 0);

        // A torn tail shows up in the next handle's recovery stats.
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAA; 5]);
        // ca-audit: allow(D4, deliberate corruption harness)
        std::fs::write(&path, &bytes).unwrap();
        let reopened = Store::open(&path).unwrap();
        assert_eq!(reopened.stats().recovery_truncated_bytes, 5);
        assert_eq!(reopened.stats().appends, 0);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_and_header_only_files_open_clean() {
        let tmp = TempDir::new("fresh");
        let path = tmp.path("store.caj");
        // Nonexistent -> created with just a header.
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean());
        assert!(store.is_empty());
        drop(store);
        assert_eq!(std::fs::read(&path).unwrap(), MAGIC);
        // Header-only file replays clean with zero records.
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean());
        assert_eq!(store.recovery().valid_records, 0);
        assert!(store.is_empty());
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let path = tmp.path("store.caj");
        let a = record("AND2", 1, "CAM 1\nend\n");
        let q = Record {
            cell: "BROKEN".to_string(),
            structure: 0,
            wiring: 0,
            reduced: 0,
            fingerprint: 99,
            options_tag: 5,
            budget_tag: 7,
            payload: Payload::Quarantined {
                phase: 1,
                retries: 2,
                reason: "solver oscillated on `BROKEN` (nets: osc)".to_string(),
            },
        };
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&a).unwrap();
            store.append(&q).unwrap();
        }
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
        assert_eq!(store.recovery().valid_records, 2);
        assert_eq!(store.get("AND2"), Some(&a));
        assert_eq!(store.get("BROKEN"), Some(&q));
        assert_eq!(store.get("MISSING"), None);
    }

    #[test]
    fn duplicate_cells_are_last_writer_wins() {
        let tmp = TempDir::new("dups");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("X", 1, "old")).unwrap();
            store.append(&record("Y", 2, "y")).unwrap();
            store.append(&record("X", 3, "new")).unwrap();
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.recovery().valid_records, 3);
        assert_eq!(store.recovery().duplicates, 1);
        assert_eq!(store.len(), 2);
        match &store.get("X").unwrap().payload {
            Payload::Complete { cam } => assert_eq!(cam, "new"),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let tmp = TempDir::new("torn");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("GOOD", 1, "kept")).unwrap();
        }
        let intact = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append: a frame header promising more
        // bytes than the file holds.
        let mut torn = intact.clone();
        torn.extend_from_slice(&500u32.to_le_bytes());
        torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        torn.extend_from_slice(b"half a reco");
        // ca-audit: allow(D4, deliberate corruption harness)
        std::fs::write(&path, &torn).unwrap();
        let store = Store::open(&path).unwrap();
        let report = store.recovery();
        assert_eq!(report.valid_records, 1);
        let ev = report.corruption.as_ref().unwrap();
        assert_eq!(ev.kind, CorruptionKind::TornFrame);
        assert_eq!(ev.offset, intact.len() as u64);
        assert_eq!(report.truncated_bytes, (torn.len() - intact.len()) as u64);
        assert_eq!(store.get("GOOD"), Some(&record("GOOD", 1, "kept")));
        drop(store);
        // The tail is physically gone: the journal is byte-identical to
        // the pre-crash state and replays clean.
        assert_eq!(std::fs::read(&path).unwrap(), intact);
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean());
    }

    #[test]
    fn exactly_one_valid_record_with_torn_tail_survives_and_extends() {
        let tmp = TempDir::new("extend");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("A", 1, "a")).unwrap();
        }
        // Torn tail...
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]);
        // ca-audit: allow(D4, deliberate corruption harness)
        std::fs::write(&path, &bytes).unwrap();
        // ...recovered, then the journal keeps growing normally.
        {
            let mut store = Store::open(&path).unwrap();
            assert!(!store.recovery().is_clean());
            store.append(&record("B", 2, "b")).unwrap();
        }
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
        assert_eq!(store.recovery().valid_records, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn crc_mismatch_detected_on_bit_flip() {
        let tmp = TempDir::new("flip");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("A", 1, "aaaa")).unwrap();
            store.append(&record("B", 2, "bbbb")).unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        // Flip a bit inside the *second* record's payload.
        corrupt::bit_flip(&path, len - 3, 2).unwrap();
        let store = Store::open(&path).unwrap();
        let report = store.recovery();
        assert_eq!(report.valid_records, 1);
        assert_eq!(
            report.corruption.as_ref().unwrap().kind,
            CorruptionKind::CrcMismatch
        );
        assert_eq!(store.get("A"), Some(&record("A", 1, "aaaa")));
        assert_eq!(store.get("B"), None, "corrupted record must not serve");
    }

    #[test]
    fn garbage_append_is_rejected() {
        let tmp = TempDir::new("garbage");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("A", 1, "a")).unwrap();
        }
        corrupt::garbage_append(&path, 42, 64).unwrap();
        let store = Store::open(&path).unwrap();
        assert_eq!(store.recovery().valid_records, 1);
        assert!(store.recovery().corruption.is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn bad_header_resets_the_store() {
        let tmp = TempDir::new("header");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("A", 1, "a")).unwrap();
        }
        corrupt::bit_flip(&path, 2, 0).unwrap();
        let store = Store::open(&path).unwrap();
        let report = store.recovery();
        assert_eq!(
            report.corruption.as_ref().unwrap().kind,
            CorruptionKind::BadHeader
        );
        assert_eq!(report.valid_records, 0);
        assert!(store.is_empty());
        drop(store);
        // The reset store is a working empty store.
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean());
    }

    #[test]
    fn truncation_inside_header_resets() {
        let tmp = TempDir::new("shorthdr");
        let path = tmp.path("store.caj");
        {
            let mut store = Store::open(&path).unwrap();
            store.append(&record("A", 1, "a")).unwrap();
        }
        corrupt::truncate_at(&path, 5).unwrap();
        let store = Store::open(&path).unwrap();
        assert_eq!(
            store.recovery().corruption.as_ref().unwrap().kind,
            CorruptionKind::BadHeader
        );
        assert!(store.is_empty());
    }

    #[test]
    fn compact_collapses_duplicates_and_replays_clean() {
        let tmp = TempDir::new("compact");
        let path = tmp.path("store.caj");
        let mut store = Store::open(&path).unwrap();
        store.append(&record("X", 1, "old")).unwrap();
        store.append(&record("X", 2, "new")).unwrap();
        store.append(&record("Y", 3, "y")).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        store.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "{after} >= {before}");
        // The compacted store is still appendable with the same handle.
        store.append(&record("Z", 4, "z")).unwrap();
        drop(store);
        let store = Store::open(&path).unwrap();
        assert!(store.recovery().is_clean());
        assert_eq!(store.recovery().valid_records, 3);
        assert_eq!(store.recovery().duplicates, 0);
        assert_eq!(store.get("X"), Some(&record("X", 2, "new")));
    }

    #[test]
    fn evicted_records_disappear_after_compaction() {
        let tmp = TempDir::new("evict");
        let path = tmp.path("store.caj");
        let mut store = Store::open(&path).unwrap();
        store.append(&record("STALE", 1, "old")).unwrap();
        store.append(&record("FRESH", 2, "new")).unwrap();
        assert!(store.evict("STALE"));
        assert!(!store.evict("STALE"), "second evict is a no-op");
        store.compact().unwrap();
        drop(store);
        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("STALE"), None);
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut bytes = record("A", 1, "a").encode().unwrap();
        bytes.push(0);
        assert!(Record::decode(&bytes).unwrap_err().contains("trailing"));
        let mut bytes = record("A", 1, "a").encode().unwrap();
        bytes[0] = 9;
        assert!(Record::decode(&bytes).unwrap_err().contains("unknown"));
        assert!(Record::decode(&[]).is_err());
    }

    #[test]
    fn write_atomic_creates_and_replaces() {
        let tmp = TempDir::new("atomic");
        let path = tmp.path("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        // No tmp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn recovery_report_renders() {
        let clean = RecoveryReport {
            valid_records: 3,
            duplicates: 1,
            ..RecoveryReport::default()
        };
        assert!(clean.render().contains("clean"));
        let dirty = RecoveryReport {
            valid_records: 2,
            duplicates: 0,
            corruption: Some(CorruptionEvent {
                offset: 40,
                kind: CorruptionKind::CrcMismatch,
                detail: "stored 0x0, computed 0x1".into(),
            }),
            truncated_bytes: 17,
        };
        let text = dirty.render();
        assert!(text.contains("RECOVERED"), "{text}");
        assert!(text.contains("CRC mismatch at byte 40"), "{text}");
    }
}
