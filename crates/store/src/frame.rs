//! The shared length-prefixed CRC frame codec.
//!
//! One frame is `[u32 LE payload length][u32 LE CRC32(payload)][payload]`.
//! The journal ([`Store`](crate::Store)) uses it for on-disk records and
//! `ca-serve` speaks it on the wire, so both sides share one integrity
//! discipline: a declared length is sanity-capped *before* any
//! allocation, a CRC mismatch is a structured error, and a short read is
//! "torn", never a panic.
//!
//! Two shapes cover both consumers:
//!
//! - [`decode`]: frame-at-offset over an in-memory byte slice (journal
//!   replay; the caller maps [`FrameError`] onto its recovery policy).
//! - [`read_frame`] / [`write_frame`]: streaming over any
//!   `Read`/`Write` (sockets). EOF *between* frames is a clean `None`;
//!   EOF *inside* a frame is [`FrameError::Torn`].

use crate::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Size of a frame header: 4 length bytes + 4 CRC bytes.
pub const FRAME_HEADER_LEN: usize = 8;

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum FrameError {
    /// The bytes end before the declared frame does (torn write or
    /// truncated stream).
    Torn {
        /// Human-readable specifics (bytes present vs. needed).
        detail: String,
    },
    /// The declared payload length exceeds the caller's sanity cap; the
    /// payload was *not* allocated or read.
    TooLarge {
        /// The declared length.
        len: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The payload's CRC32 does not match the header.
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The underlying reader/writer failed (streaming API only).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Torn { detail } => write!(f, "torn frame: {detail}"),
            FrameError::TooLarge { len, cap } => {
                write!(f, "declared payload length {len} exceeds sanity cap {cap}")
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(f, "stored {stored:#010x}, computed {computed:#010x}")
            }
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: header + payload in a fresh buffer.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes the frame starting at `offset` in `bytes`, returning the
/// payload slice and the offset of the next frame.
///
/// # Errors
///
/// [`FrameError::Torn`] when the slice ends early, [`FrameError::TooLarge`]
/// when the declared length exceeds `cap`, [`FrameError::CrcMismatch`] on
/// checksum failure. Never panics and never allocates.
pub fn decode(bytes: &[u8], offset: usize, cap: u32) -> Result<(&[u8], usize), FrameError> {
    let remaining = bytes.len().saturating_sub(offset);
    if remaining < FRAME_HEADER_LEN {
        return Err(FrameError::Torn {
            detail: format!("{remaining} byte(s) left, frame header needs {FRAME_HEADER_LEN}"),
        });
    }
    let len = u32::from_le_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]);
    let crc = u32::from_le_bytes([
        bytes[offset + 4],
        bytes[offset + 5],
        bytes[offset + 6],
        bytes[offset + 7],
    ]);
    if len > cap {
        return Err(FrameError::TooLarge { len, cap });
    }
    if (len as usize) > remaining - FRAME_HEADER_LEN {
        return Err(FrameError::Torn {
            detail: format!(
                "declared payload length {len}, only {} byte(s) left",
                remaining - FRAME_HEADER_LEN
            ),
        });
    }
    let start = offset + FRAME_HEADER_LEN;
    let payload = &bytes[start..start + len as usize];
    let computed = crc32(payload);
    if computed != crc {
        return Err(FrameError::CrcMismatch {
            stored: crc,
            computed,
        });
    }
    Ok((payload, start + len as usize))
}

/// Writes one frame to `w` (no flush; the caller owns durability).
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds `cap` (nothing is written),
/// otherwise the writer's own I/O errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], cap: u32) -> io::Result<()> {
    if payload.len() > cap as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload length {} exceeds frame cap {cap}", payload.len()),
        ));
    }
    w.write_all(&encode(payload))
}

/// Reads one whole frame from `r`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed
/// between frames). The payload buffer is only allocated after the
/// declared length passes the `cap` check, so a hostile length field can
/// never drive an unbounded allocation.
///
/// # Errors
///
/// [`FrameError::Torn`] on EOF mid-frame, [`FrameError::TooLarge`] /
/// [`FrameError::CrcMismatch`] as in [`decode`], [`FrameError::Io`] on
/// any other read failure.
pub fn read_frame<R: Read>(r: &mut R, cap: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Torn {
                    detail: format!("EOF after {got} of {FRAME_HEADER_LEN} header byte(s)"),
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > cap {
        return Err(FrameError::TooLarge { len, cap });
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Torn {
                    detail: format!("EOF after {got} of {len} payload byte(s)"),
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let computed = crc32(&payload);
    if computed != crc {
        return Err(FrameError::CrcMismatch {
            stored: crc,
            computed,
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for payload in [&b""[..], b"x", b"hello frame", &[0u8; 1024]] {
            let frame = encode(payload);
            let (got, next) = decode(&frame, 0, 1 << 20).unwrap();
            assert_eq!(got, payload);
            assert_eq!(next, frame.len());
        }
    }

    #[test]
    fn decode_walks_consecutive_frames() {
        let mut buf = encode(b"one");
        buf.extend_from_slice(&encode(b"two"));
        let (a, next) = decode(&buf, 0, 64).unwrap();
        assert_eq!(a, b"one");
        let (b, end) = decode(&buf, next, 64).unwrap();
        assert_eq!(b, b"two");
        assert_eq!(end, buf.len());
    }

    #[test]
    fn truncation_at_every_split_is_torn_or_io() {
        let frame = encode(b"truncate me");
        for cut in 0..frame.len() {
            let err = decode(&frame[..cut], 0, 64).unwrap_err();
            assert!(matches!(err, FrameError::Torn { .. }), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode(b"payload");
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode(&frame, 0, 1 << 20) {
            Err(FrameError::TooLarge { len, cap }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(cap, 1 << 20);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let frame = encode(b"bitrot victim");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                // Any single-bit flip must fail structured: a flipped
                // length is torn/oversized, a flipped CRC or payload is
                // a CRC mismatch. (A length flip can also shorten the
                // declared payload, which then fails the CRC.)
                assert!(decode(&flipped, 0, 64).is_err(), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha", 64).unwrap();
        write_frame(&mut buf, b"beta", 64).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"beta");
        assert!(read_frame(&mut cursor, 64).unwrap().is_none());
    }

    #[test]
    fn stream_eof_mid_frame_is_torn() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"interrupted", 64).unwrap();
        for cut in 1..buf.len() {
            let mut cursor = io::Cursor::new(buf[..cut].to_vec());
            let err = read_frame(&mut cursor, 64).unwrap_err();
            assert!(matches!(err, FrameError::Torn { .. }), "cut {cut}");
        }
    }

    #[test]
    fn write_frame_refuses_over_cap_payloads() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &[0u8; 100], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing must be written on refusal");
    }
}
