//! Gaussian Naive Bayes — one more of the "etc." baselines the paper
//! screened before settling on the Random Forest (§II.B).
//!
//! Per class, each feature is modelled as an independent Gaussian; the
//! predicted class maximizes the log-posterior. Variances are floored to
//! keep constant features harmless.

use crate::data::Dataset;
use crate::Classifier;

/// Gaussian Naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// Per class: prior, per-feature mean, per-feature variance.
    classes: Vec<ClassStats>,
}

#[derive(Debug, Clone)]
struct ClassStats {
    log_prior: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

const VARIANCE_FLOOR: f64 = 1e-6;

impl GaussianNb {
    /// Creates an untrained classifier.
    pub fn new() -> GaussianNb {
        GaussianNb::default()
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let k = data.num_classes().max(1);
        let d = data.num_features();
        let n = data.len() as f64;
        let mut counts = vec![0usize; k];
        let mut sums = vec![vec![0.0f64; d]; k];
        for i in 0..data.len() {
            let c = data.label(i) as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(data.row(i)) {
                *s += x as f64;
            }
        }
        let mut classes: Vec<ClassStats> = (0..k)
            .map(|c| {
                let m = counts[c].max(1) as f64;
                ClassStats {
                    log_prior: ((counts[c] as f64 + 1.0) / (n + k as f64)).ln(),
                    means: sums[c].iter().map(|s| s / m).collect(),
                    variances: vec![0.0; d],
                }
            })
            .collect();
        for i in 0..data.len() {
            let c = data.label(i) as usize;
            let stats = &mut classes[c];
            for (v, (&x, mean)) in stats
                .variances
                .iter_mut()
                .zip(data.row(i).iter().zip(&stats.means.clone()))
            {
                *v += (x as f64 - mean).powi(2);
            }
        }
        for (c, stats) in classes.iter_mut().enumerate() {
            let m = counts[c].max(1) as f64;
            for v in &mut stats.variances {
                *v = (*v / m).max(VARIANCE_FLOOR);
            }
        }
        self.classes = classes;
    }

    fn predict(&self, row: &[f32]) -> u32 {
        assert!(!self.classes.is_empty(), "predict before fit");
        let mut best = (f64::NEG_INFINITY, 0u32);
        for (c, stats) in self.classes.iter().enumerate() {
            let mut log_p = stats.log_prior;
            for ((&x, mean), variance) in row.iter().zip(&stats.means).zip(&stats.variances) {
                let diff = x as f64 - mean;
                log_p -= 0.5 * (diff * diff / variance + variance.ln());
            }
            if log_p > best.0 {
                best = (log_p, c as u32);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_gaussian_blobs() {
        let mut d = Dataset::new(2);
        for i in 0..60 {
            let jitter = (i % 5) as f32 * 0.1;
            d.push_row(&[0.0 + jitter, 0.0 - jitter], 0);
            d.push_row(&[5.0 - jitter, 5.0 + jitter], 1);
        }
        let mut nb = GaussianNb::new();
        nb.fit(&d);
        assert_eq!(nb.predict(&[0.2, 0.1]), 0);
        assert_eq!(nb.predict(&[4.8, 5.1]), 1);
    }

    #[test]
    fn constant_features_are_harmless() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push_row(&[1.0, i as f32], u32::from(i >= 10));
        }
        let mut nb = GaussianNb::new();
        nb.fit(&d);
        assert_eq!(nb.predict(&[1.0, 2.0]), 0);
        assert_eq!(nb.predict(&[1.0, 18.0]), 1);
    }

    #[test]
    fn fails_on_xor_like_linear_models() {
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            d.push_row(&[0.0, 0.0], 0);
            d.push_row(&[0.0, 1.0], 1);
            d.push_row(&[1.0, 0.0], 1);
            d.push_row(&[1.0, 1.0], 0);
        }
        let mut nb = GaussianNb::new();
        nb.fit(&d);
        let acc = (0..d.len())
            .filter(|&i| nb.predict(d.row(i)) == d.label(i))
            .count() as f64
            / d.len() as f64;
        assert!(acc <= 0.75, "NB cannot represent XOR: {acc}");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let nb = GaussianNb::new();
        let _ = nb.predict(&[0.0]);
    }
}
