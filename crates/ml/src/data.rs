//! Dataset container shared by all classifiers.
//!
//! Rows are feature vectors of `f32` (the CA-matrix encodes everything as
//! small integers, but `f32` keeps the classifiers generic); labels are
//! dense `u32` class ids starting at 0.

use std::fmt;

/// A labelled dataset, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<u32>,
    num_features: usize,
}

impl Dataset {
    /// Creates an empty dataset with `num_features` columns.
    pub fn new(num_features: usize) -> Dataset {
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            num_features,
        }
    }

    /// Creates a dataset from parts.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` is not a multiple of `num_features` or
    /// the row count disagrees with `labels.len()`.
    pub fn from_parts(features: Vec<f32>, labels: Vec<u32>, num_features: usize) -> Dataset {
        assert!(num_features > 0, "num_features must be positive");
        assert_eq!(features.len() % num_features, 0, "ragged feature matrix");
        assert_eq!(features.len() / num_features, labels.len(), "label count");
        Dataset {
            features,
            labels,
            num_features,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != num_features()`.
    pub fn push_row(&mut self, row: &[f32], label: u32) {
        assert_eq!(row.len(), self.num_features, "row width mismatch");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of distinct classes (max label + 1).
    pub fn num_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m as usize + 1)
    }

    /// Row `i` as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.num_features..(i + 1) * self.num_features]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Extends with all rows of `other`.
    ///
    /// # Panics
    ///
    /// Panics on differing widths.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.num_features, other.num_features, "width mismatch");
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }

    /// A new dataset containing only the rows whose indices are in `idx`.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.num_features);
        for &i in idx {
            out.push_row(self.row(i), self.label(i));
        }
        out
    }

    /// The most frequent label (ties resolved to the smallest), or `None`
    /// when empty. The *majority-class baseline* any classifier must beat.
    pub fn majority_label(&self) -> Option<u32> {
        if self.labels.is_empty() {
            return None;
        }
        let k = self.num_classes();
        let mut counts = vec![0usize; k];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} rows x {} features, {} classes)",
            self.len(),
            self.num_features,
            self.num_classes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(2);
        d.push_row(&[0.0, 1.0], 0);
        d.push_row(&[1.0, 0.0], 1);
        d.push_row(&[1.0, 1.0], 1);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.row(1), &[1.0, 0.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.to_string(), "Dataset(3 rows x 2 features, 2 classes)");
    }

    #[test]
    fn majority_and_counts() {
        let d = sample();
        assert_eq!(d.majority_label(), Some(1));
        assert_eq!(d.class_counts(), vec![1, 2]);
        assert_eq!(Dataset::new(3).majority_label(), None);
    }

    #[test]
    fn subset_selects_rows() {
        let d = sample();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_checks_width() {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0], 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 4.0], vec![0, 1], 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn extend_concatenates() {
        let mut d = sample();
        let other = sample();
        d.extend_from(&other);
        assert_eq!(d.len(), 6);
    }
}
