//! CART decision tree with Gini impurity.
//!
//! Split search is histogram-based: when a feature's values in a node span
//! a small integer range (the common case for CA-matrix features, which
//! are codes in `0..=3` and flags in `0..=1`), candidate thresholds are
//! scanned in one counting pass; otherwise the node's values are sorted.
//! Feature subsampling (`max_features`) makes the tree usable as a random
//! forest member.

use crate::data::Dataset;
use crate::Classifier;
use ca_rng::{Rng, SplitMix64};

/// Hyperparameters of a decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf must hold.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` = all.
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 24,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        label: u32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A trained CART decision tree classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    num_classes: usize,
    rng: SplitMix64,
    importance: Vec<f64>,
}

impl DecisionTree {
    /// Creates an untrained tree with the given parameters.
    pub fn new(params: TreeParams) -> DecisionTree {
        let rng = SplitMix64::new(params.seed ^ 0x9E3779B97F4A7C15);
        DecisionTree {
            params,
            nodes: Vec::new(),
            num_classes: 0,
            rng,
            importance: Vec::new(),
        }
    }

    /// Per-feature importance: total weighted Gini decrease contributed by
    /// splits on each feature, normalized to sum to 1 (all zeros before
    /// training or when the tree is a single leaf).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes in the trained tree (0 before training).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the trained tree.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, left).max(rec(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    fn build(&mut self, data: &Dataset, indices: &mut [usize], depth: usize) -> usize {
        let counts = class_counts(data, indices, self.num_classes);
        let majority = argmax(&counts);
        let node_gini = gini(&counts, indices.len());
        let stop = depth >= self.params.max_depth
            || indices.len() < 2 * self.params.min_samples_leaf
            || node_gini == 0.0;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(data, indices, &counts) {
                // Partition indices in place.
                let mut mid = 0;
                for i in 0..indices.len() {
                    if data.row(indices[i])[feature] <= threshold {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                if mid >= self.params.min_samples_leaf
                    && indices.len() - mid >= self.params.min_samples_leaf
                {
                    // Mean-decrease-in-impurity bookkeeping.
                    let left_counts = class_counts(data, &indices[..mid], self.num_classes);
                    let right_counts = class_counts(data, &indices[mid..], self.num_classes);
                    let n = indices.len() as f64;
                    let child = (mid as f64 * gini(&left_counts, mid)
                        + (indices.len() - mid) as f64 * gini(&right_counts, indices.len() - mid))
                        / n;
                    self.importance[feature] += n * (node_gini - child).max(0.0);
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { label: majority }); // placeholder
                    let (left_idx, right_idx) = indices.split_at_mut(mid);
                    let left = self.build(data, left_idx, depth + 1);
                    let right = self.build(data, right_idx, depth + 1);
                    self.nodes[id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return id;
                }
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { label: majority });
        id
    }

    /// Finds the impurity-minimizing `(feature, threshold)` over the
    /// (sub)sampled features, or `None` when nothing improves.
    fn best_split(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        total_counts: &[usize],
    ) -> Option<(usize, f32)> {
        let n_features = data.num_features();
        let k = self
            .params
            .max_features
            .unwrap_or(n_features)
            .min(n_features);
        let mut features: Vec<usize> = (0..n_features).collect();
        // Partial Fisher-Yates to pick k random features.
        for i in 0..k {
            let j = i + self.rng.gen_index(n_features - i);
            features.swap(i, j);
        }
        let mut best: Option<(f64, usize, f32)> = None;
        let n = indices.len() as f64;
        for &feature in &features[..k] {
            if let Some((threshold, score)) =
                best_threshold(data, indices, feature, total_counts, self.num_classes)
            {
                let improves = match best {
                    None => true,
                    Some((best_score, _, _)) => score < best_score - 1e-12,
                };
                if improves {
                    best = Some((score, feature, threshold));
                }
            }
            let _ = n;
        }
        best.map(|(_, f, t)| (f, t))
    }

    fn predict_one(&self, row: &[f32]) -> u32 {
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { label } => return label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.num_classes = data.num_classes().max(1);
        self.nodes.clear();
        self.importance = vec![0.0; data.num_features()];
        let mut indices: Vec<usize> = (0..data.len()).collect();
        self.build(data, &mut indices, 0);
        let total: f64 = self.importance.iter().sum();
        if total > 0.0 {
            for v in &mut self.importance {
                *v /= total;
            }
        }
    }

    fn predict(&self, row: &[f32]) -> u32 {
        assert!(!self.nodes.is_empty(), "predict before fit");
        self.predict_one(row)
    }
}

fn class_counts(data: &Dataset, indices: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &i in indices {
        counts[data.label(i) as usize] += 1;
    }
    counts
}

fn argmax(counts: &[usize]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Scans thresholds of one feature, returning the best `(threshold,
/// weighted child Gini)` strictly better than no split.
fn best_threshold(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
    total_counts: &[usize],
    k: usize,
) -> Option<(f32, f64)> {
    // Detect a small non-negative integer domain for the counting path.
    let mut min_v = f32::INFINITY;
    let mut max_v = f32::NEG_INFINITY;
    let mut integral = true;
    for &i in indices {
        let v = data.row(i)[feature];
        min_v = min_v.min(v);
        max_v = max_v.max(v);
        if v.fract() != 0.0 {
            integral = false;
        }
    }
    if min_v >= max_v {
        return None; // constant feature
    }
    let span = (max_v - min_v) as usize;
    if integral && span <= 64 {
        counting_threshold(data, indices, feature, total_counts, k, min_v, span)
    } else {
        sorting_threshold(data, indices, feature, total_counts, k)
    }
}

fn counting_threshold(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
    total_counts: &[usize],
    k: usize,
    min_v: f32,
    span: usize,
) -> Option<(f32, f64)> {
    let buckets = span + 1;
    let mut hist = vec![0usize; buckets * k];
    for &i in indices {
        let v = data.row(i)[feature];
        let b = (v - min_v) as usize;
        hist[b * k + data.label(i) as usize] += 1;
    }
    let total = indices.len();
    let mut left = vec![0usize; k];
    let mut left_total = 0usize;
    let mut best: Option<(f32, f64)> = None;
    for b in 0..span {
        for c in 0..k {
            left[c] += hist[b * k + c];
        }
        left_total += hist[b * k..b * k + k].iter().sum::<usize>();
        if left_total == 0 || left_total == total {
            continue;
        }
        let right_total = total - left_total;
        let right: Vec<usize> = (0..k).map(|c| total_counts[c] - left[c]).collect();
        let score = (left_total as f64 * gini(&left, left_total)
            + right_total as f64 * gini(&right, right_total))
            / total as f64;
        let threshold = min_v + b as f32 + 0.5;
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((threshold, score));
        }
    }
    let _ = total_counts;
    best
}

fn sorting_threshold(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
    total_counts: &[usize],
    k: usize,
) -> Option<(f32, f64)> {
    let mut pairs: Vec<(f32, u32)> = indices
        .iter()
        .map(|&i| (data.row(i)[feature], data.label(i)))
        .collect();
    // Total order (invariant D7): the split order feeds the tree
    // structure, which must be canonical even for pathological inputs.
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = pairs.len();
    let mut left = vec![0usize; k];
    let mut best: Option<(f32, f64)> = None;
    for w in 0..total - 1 {
        left[pairs[w].1 as usize] += 1;
        if pairs[w].0 == pairs[w + 1].0 {
            continue;
        }
        let left_total = w + 1;
        let right_total = total - left_total;
        let right: Vec<usize> = (0..k).map(|c| total_counts[c] - left[c]).collect();
        let score = (left_total as f64 * gini(&left, left_total)
            + right_total as f64 * gini(&right, right_total))
            / total as f64;
        let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((threshold, score));
        }
    }
    let _ = total_counts;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            d.push_row(&[0.0, 0.0], 0);
            d.push_row(&[0.0, 1.0], 1);
            d.push_row(&[1.0, 0.0], 1);
            d.push_row(&[1.0, 1.0], 0);
        }
        d
    }

    #[test]
    fn learns_xor_exactly() {
        let mut tree = DecisionTree::new(TreeParams::default());
        let data = xor_data();
        tree.fit(&data);
        for i in 0..data.len() {
            assert_eq!(tree.predict(data.row(i)), data.label(i));
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(1);
        d.push_row(&[0.0], 1);
        d.push_row(&[5.0], 1);
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[3.0]), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let mut tree = DecisionTree::new(TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        });
        tree.fit(&xor_data());
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push_row(&[i as f32], u32::from(i == 9));
        }
        let mut tree = DecisionTree::new(TreeParams {
            min_samples_leaf: 3,
            ..TreeParams::default()
        });
        tree.fit(&d);
        // The lone positive cannot be isolated in a leaf of 1 sample.
        // (It sits in a leaf of >= 3 samples, predicted as majority 0.)
        assert_eq!(tree.predict(&[9.0]), 0);
    }

    #[test]
    fn continuous_features_use_sorting_path() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            let v = i as f32 * 0.37;
            d.push_row(&[v], u32::from(v > 3.0));
        }
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d);
        assert_eq!(tree.predict(&[0.1]), 0);
        assert_eq!(tree.predict(&[6.9]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = xor_data();
        let mut a = DecisionTree::new(TreeParams {
            max_features: Some(1),
            seed: 7,
            ..TreeParams::default()
        });
        let mut b = DecisionTree::new(TreeParams {
            max_features: Some(1),
            seed: 7,
            ..TreeParams::default()
        });
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn importance_points_at_informative_feature() {
        // Feature 1 decides the label; feature 0 is constant noise.
        let mut d = Dataset::new(2);
        for i in 0..40 {
            d.push_row(&[1.0, (i % 2) as f32], (i % 2) as u32);
        }
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d);
        let imp = tree.feature_importance();
        assert!(imp[1] > 0.99, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot fit on an empty dataset")]
    fn empty_fit_panics() {
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&Dataset::new(2));
    }
}
