//! Evaluation metrics: accuracy, confusion matrix, precision/recall/F1.

use crate::data::Dataset;
use crate::Classifier;

/// Fraction of rows where `predicted == actual`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predicted: &[u32], actual: &[u32]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// Evaluates `classifier` on `data`, returning its accuracy.
pub fn evaluate(classifier: &dyn Classifier, data: &Dataset) -> f64 {
    let predicted = classifier.predict_batch(data);
    accuracy(&predicted, data.labels())
}

/// A `k x k` confusion matrix (`rows = actual`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    k: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/actual slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn from_predictions(predicted: &[u32], actual: &[u32]) -> ConfusionMatrix {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let k = predicted
            .iter()
            .chain(actual)
            .max()
            .map_or(1, |&m| m as usize + 1);
        let mut counts = vec![0usize; k * k];
        for (&p, &a) in predicted.iter().zip(actual) {
            counts[a as usize * k + p as usize] += 1;
        }
        ConfusionMatrix { counts, k }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Count of rows with actual class `a` predicted as `p`.
    pub fn count(&self, actual: u32, predicted: u32) -> usize {
        self.counts[actual as usize * self.k + predicted as usize]
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when nothing was
    /// predicted as `c`.
    pub fn precision(&self, c: u32) -> Option<f64> {
        let tp = self.count(c, c);
        let predicted: usize = (0..self.k).map(|a| self.count(a as u32, c)).sum();
        if predicted == 0 {
            None
        } else {
            Some(tp as f64 / predicted as f64)
        }
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when class `c` never
    /// occurs.
    pub fn recall(&self, c: u32) -> Option<f64> {
        let tp = self.count(c, c);
        let actual: usize = (0..self.k).map(|p| self.count(c, p as u32)).sum();
        if actual == 0 {
            None
        } else {
            Some(tp as f64 / actual as f64)
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: u32) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        let correct: usize = (0..self.k).map(|c| self.count(c as u32, c as u32)).sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&[1, 0, 1], &[1, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_cells() {
        let m = ConfusionMatrix::from_predictions(&[1, 0, 1, 1], &[1, 0, 0, 1]);
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = ConfusionMatrix::from_predictions(&[1, 0, 1, 1], &[1, 0, 0, 1]);
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(1).unwrap() - 1.0).abs() < 1e-12);
        let f1 = m.f1(1).unwrap();
        assert!((f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_return_none() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(m.num_classes(), 1);
        assert_eq!(m.precision(0), Some(1.0));
        let m2 = ConfusionMatrix::from_predictions(&[0, 0], &[0, 1]);
        assert!(m2.precision(1).is_none());
        assert!(m2.recall(1).is_some());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_checks_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }
}
