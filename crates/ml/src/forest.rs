//! Random Forest classifier: bagged CART trees with feature subsampling.
//!
//! This is the classifier the paper selects after comparing k-NN, SVM,
//! linear and ridge models (§II.B). Determinism: all randomness derives
//! from [`ForestParams::seed`].

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use crate::Classifier;
use ca_rng::{Rng, Xoshiro256StarStar};

/// Hyperparameters of a random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features examined per split; `None` = `sqrt(num_features)`.
    pub max_features: Option<usize>,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> ForestParams {
        ForestParams {
            num_trees: 100,
            max_depth: 24,
            min_samples_leaf: 1,
            max_features: None,
            bootstrap_fraction: 1.0,
            seed: 0,
        }
    }
}

impl ForestParams {
    /// A smaller, faster configuration for tests and quick sweeps.
    pub fn quick() -> ForestParams {
        ForestParams {
            num_trees: 40,
            max_depth: 20,
            ..ForestParams::default()
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(params: ForestParams) -> RandomForest {
        RandomForest {
            params,
            trees: Vec::new(),
            num_classes: 0,
        }
    }

    /// Number of trained trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean per-feature importance across trees (normalized to sum to 1,
    /// empty before training).
    pub fn feature_importance(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let n = self.trees[0].feature_importance().len();
        let mut sum = vec![0.0f64; n];
        for tree in &self.trees {
            for (s, &v) in sum.iter_mut().zip(tree.feature_importance()) {
                *s += v;
            }
        }
        let total: f64 = sum.iter().sum();
        if total > 0.0 {
            for v in &mut sum {
                *v /= total;
            }
        }
        sum
    }

    /// Per-class vote fractions for `row` (sums to 1).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Classifier::fit`].
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        ca_obs::counter!("ca_ml.predict.rows", Work).inc();
        let mut votes = vec![0usize; self.num_classes.max(1)];
        for tree in &self.trees {
            let label = tree.predict(row) as usize;
            if label < votes.len() {
                votes[label] += 1;
            }
        }
        let total = self.trees.len() as f64;
        votes.iter().map(|&v| v as f64 / total).collect()
    }
}

impl RandomForest {
    /// [`Classifier::fit`] on an explicit executor. The trained forest is
    /// bit-identical at every thread count: bootstrap sampling stays on
    /// the single sequential master stream, and each tree's fit depends
    /// only on its own sample and per-tree seed.
    pub fn fit_with(&mut self, data: &Dataset, executor: &ca_exec::Executor) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.num_classes = data.num_classes().max(1);
        self.trees.clear();
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.params.seed);
        let sample_size =
            ((data.len() as f64 * self.params.bootstrap_fraction).round() as usize).max(1);
        let max_features = self.params.max_features.unwrap_or_else(|| {
            // sqrt(n) is the classic forest default but starves trees when
            // only a handful of columns are informative (as in CA-matrix
            // groups with many all-zero defect flags); n/3 is a better
            // floor for those.
            let n = data.num_features();
            ((n as f64).sqrt().round() as usize).max(n / 3).clamp(1, n)
        });
        // Bootstrap indices are drawn sequentially from the single master
        // stream, exactly as the serial implementation did, so the forest
        // stays bit-identical at every thread count. Only the tree fits —
        // independent given their sample and per-tree seed — go parallel.
        let bootstraps: Vec<Vec<usize>> = (0..self.params.num_trees)
            .map(|_| {
                (0..sample_size)
                    .map(|_| rng.gen_index(data.len()))
                    .collect()
            })
            .collect();
        let (max_depth, min_samples_leaf, seed) = (
            self.params.max_depth,
            self.params.min_samples_leaf,
            self.params.seed,
        );
        let _span = ca_obs::span_root("ca_ml.forest.fit");
        self.trees = executor.map(&bootstraps, |t, indices| {
            // Per-tree fit time is a wall-clock observation (excluded
            // from determinism checks); the tree count is `work`.
            let _tree_span = ca_obs::span_root("ca_ml.forest.fit_tree");
            ca_obs::counter!("ca_ml.forest.trees_fitted", Work).inc();
            let sample = data.subset(indices);
            let mut tree = DecisionTree::new(TreeParams {
                max_depth,
                min_samples_leaf,
                max_features: Some(max_features),
                seed: seed.wrapping_add(t as u64 + 1),
            });
            // A bootstrap sample can miss classes entirely; the tree only
            // sees its own sample, so re-align label space via max class.
            tree.fit(&sample);
            tree
        });
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        self.fit_with(data, &ca_exec::Executor::from_env());
    }

    fn predict(&self, row: &[f32]) -> u32 {
        let proba = self.predict_proba(row);
        proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_bands() -> Dataset {
        // label = 1 iff feature0 >= 5, with a second noisy feature.
        let mut d = Dataset::new(2);
        for i in 0..200 {
            let x = (i % 10) as f32;
            let noise = ((i * 37) % 7) as f32;
            d.push_row(&[x, noise], u32::from(x >= 5.0));
        }
        d
    }

    #[test]
    fn learns_simple_band() {
        let mut forest = RandomForest::new(ForestParams::quick());
        let data = noisy_bands();
        forest.fit(&data);
        let correct = (0..data.len())
            .filter(|&i| forest.predict(data.row(i)) == data.label(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.98);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_bands();
        let mut a = RandomForest::new(ForestParams::quick());
        let mut b = RandomForest::new(ForestParams::quick());
        a.fit(&data);
        b.fit(&data);
        for i in 0..data.len() {
            assert_eq!(a.predict(data.row(i)), b.predict(data.row(i)));
        }
    }

    #[test]
    fn proba_sums_to_one() {
        let mut forest = RandomForest::new(ForestParams::quick());
        let data = noisy_bands();
        forest.fit(&data);
        let p = forest.predict_proba(data.row(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beats_majority_baseline_on_balanced_data() {
        let data = noisy_bands();
        let mut forest = RandomForest::new(ForestParams::quick());
        forest.fit(&data);
        let majority = data.majority_label().unwrap();
        let baseline =
            data.labels().iter().filter(|&&l| l == majority).count() as f64 / data.len() as f64;
        let accuracy = (0..data.len())
            .filter(|&i| forest.predict(data.row(i)) == data.label(i))
            .count() as f64
            / data.len() as f64;
        assert!(accuracy > baseline);
    }

    #[test]
    fn forest_importance_is_normalized_and_informative() {
        let data = noisy_bands();
        let mut forest = RandomForest::new(ForestParams::quick());
        forest.fit(&data);
        let imp = forest.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "label depends on feature 0: {imp:?}");
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let data = noisy_bands();
        let mut serial = RandomForest::new(ForestParams::quick());
        serial.fit_with(&data, &ca_exec::Executor::with_threads(1));
        let mut parallel = RandomForest::new(ForestParams::quick());
        parallel.fit_with(&data, &ca_exec::Executor::with_threads(8));
        assert_eq!(serial.num_trees(), parallel.num_trees());
        assert_eq!(serial.feature_importance(), parallel.feature_importance());
        for i in 0..data.len() {
            assert_eq!(
                serial.predict_proba(data.row(i)),
                parallel.predict_proba(data.row(i)),
                "row {i}"
            );
        }
    }

    #[test]
    fn trains_requested_tree_count() {
        let mut forest = RandomForest::new(ForestParams {
            num_trees: 7,
            ..ForestParams::quick()
        });
        forest.fit(&noisy_bands());
        assert_eq!(forest.num_trees(), 7);
    }
}
