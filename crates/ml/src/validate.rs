//! Model validation utilities: train/test splits and k-fold
//! cross-validation, deterministic under a seed.

use crate::data::Dataset;
use crate::metrics::accuracy;
use crate::Classifier;

fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x5DEECE66D;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        indices.swap(i, j);
    }
    indices
}

/// Splits `data` into `(train, test)` with `test_fraction` of the rows in
/// the test set, after a seeded shuffle.
///
/// # Panics
///
/// Panics if `test_fraction` is not in `(0, 1)` or the dataset is empty.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_fraction) && test_fraction > 0.0,
        "test_fraction must be in (0, 1)"
    );
    assert!(!data.is_empty(), "cannot split an empty dataset");
    let indices = shuffled_indices(data.len(), seed);
    let n_test = ((data.len() as f64 * test_fraction).round() as usize).clamp(1, data.len() - 1);
    let test = data.subset(&indices[..n_test]);
    let train = data.subset(&indices[n_test..]);
    (train, test)
}

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Per-fold accuracy, in fold order.
    pub fold_accuracies: Vec<f64>,
}

impl CrossValidation {
    /// Mean accuracy across folds.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation across folds (0 for fewer than 2 folds).
    pub fn std_dev(&self) -> f64 {
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Runs k-fold cross-validation: `make_classifier` builds a fresh model
/// per fold.
///
/// # Panics
///
/// Panics if `k < 2` or `data` has fewer than `k` rows.
pub fn cross_validate(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make_classifier: impl FnMut() -> Box<dyn Classifier>,
) -> CrossValidation {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(data.len() >= k, "need at least k rows");
    let indices = shuffled_indices(data.len(), seed);
    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let test_idx: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, &x)| x)
            .collect();
        let train_idx: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, &x)| x)
            .collect();
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut model = make_classifier();
        model.fit(&train);
        let predicted = model.predict_batch(&test);
        fold_accuracies.push(accuracy(&predicted, test.labels()));
    }
    CrossValidation { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestParams, RandomForest};

    fn band_data() -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..120 {
            d.push_row(&[(i % 12) as f32], u32::from(i % 12 >= 6));
        }
        d
    }

    #[test]
    fn split_partitions_rows() {
        let data = band_data();
        let (train, test) = train_test_split(&data, 0.25, 9);
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_deterministic() {
        let data = band_data();
        let (a, _) = train_test_split(&data, 0.25, 9);
        let (b, _) = train_test_split(&data, 0.25, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_validation_on_learnable_data() {
        let data = band_data();
        let cv = cross_validate(&data, 4, 7, || {
            Box::new(RandomForest::new(ForestParams::quick()))
        });
        assert_eq!(cv.fold_accuracies.len(), 4);
        assert!(cv.mean() > 0.95, "mean {}", cv.mean());
        assert!(cv.std_dev() < 0.2);
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn rejects_k_of_one() {
        let data = band_data();
        let _ = cross_validate(&data, 1, 0, || {
            Box::new(RandomForest::new(ForestParams::quick()))
        });
    }
}
