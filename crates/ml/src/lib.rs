//! From-scratch classifiers for cell-aware defect prediction.
//!
//! The paper implements its methodology on scikit-learn; this crate is the
//! native Rust equivalent the workspace trains and benchmarks:
//!
//! - [`RandomForest`] — the selected model (bagged CART trees,
//!   feature subsampling),
//! - [`DecisionTree`] — the forest member, usable standalone,
//! - [`KNearest`] and [`LinearClassifier`] (logistic / ridge / linear SVM)
//!   — the baselines the paper rejected after comparison (§II.B),
//! - [`Dataset`], [`metrics`] — containers and evaluation.
//!
//! Everything is deterministic given the seeds in the parameter structs.
//!
//! # Example
//!
//! ```
//! use ca_ml::{Classifier, Dataset, ForestParams, RandomForest};
//!
//! let mut data = Dataset::new(2);
//! for i in 0..100u32 {
//!     let x = (i % 10) as f32;
//!     data.push_row(&[x, 1.0], u32::from(x > 4.0));
//! }
//! let mut forest = RandomForest::new(ForestParams::quick());
//! forest.fit(&data);
//! assert_eq!(forest.predict(&[9.0, 1.0]), 1);
//! assert_eq!(forest.predict(&[1.0, 1.0]), 0);
//! ```

pub mod baselines;
pub mod data;
pub mod forest;
pub mod metrics;
pub mod naive_bayes;
pub mod tree;
pub mod validate;

pub use baselines::{KNearest, LinearClassifier, LinearLoss};
pub use data::Dataset;
pub use forest::{ForestParams, RandomForest};
pub use naive_bayes::GaussianNb;
pub use tree::{DecisionTree, TreeParams};
pub use validate::{cross_validate, train_test_split, CrossValidation};

/// Common supervised-classifier interface.
pub trait Classifier {
    /// Trains on `data`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `data` is empty.
    fn fit(&mut self, data: &Dataset);

    /// Predicts the class of one feature row.
    ///
    /// # Panics
    ///
    /// Implementations panic when called before [`Classifier::fit`].
    fn predict(&self, row: &[f32]) -> u32;

    /// Predicts every row of `data`.
    fn predict_batch(&self, data: &Dataset) -> Vec<u32> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_is_object_safe() {
        let mut data = Dataset::new(1);
        data.push_row(&[0.0], 0);
        data.push_row(&[1.0], 1);
        let mut boxed: Box<dyn Classifier> = Box::new(KNearest::new(1));
        boxed.fit(&data);
        assert_eq!(boxed.predict(&[0.9]), 1);
        assert_eq!(boxed.predict_batch(&data), vec![0, 1]);
    }
}
