//! Baseline classifiers the paper compared against Random Forest (§II.B):
//! k-nearest-neighbours, logistic regression, ridge classifier and a
//! linear SVM. The linear models are binary (labels 0/1), which matches
//! the CA detection task.

use crate::data::Dataset;
use crate::Classifier;
use ca_rng::{Rng, SplitMix64};

/// k-nearest-neighbours with Euclidean distance (brute force).
#[derive(Debug, Clone)]
pub struct KNearest {
    /// Number of neighbours consulted.
    pub k: usize,
    data: Option<Dataset>,
}

impl KNearest {
    /// Creates a k-NN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> KNearest {
        assert!(k > 0, "k must be positive");
        KNearest { k, data: None }
    }
}

impl Classifier for KNearest {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.data = Some(data.clone());
    }

    fn predict(&self, row: &[f32]) -> u32 {
        let data = self.data.as_ref().expect("predict before fit");
        let mut dists: Vec<(f64, u32)> = (0..data.len())
            .map(|i| {
                let d: f64 = data
                    .row(i)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| ((a - b) as f64).powi(2))
                    .sum();
                (d, data.label(i))
            })
            .collect();
        let k = self.k.min(dists.len());
        // Total order (invariant D7): NaN distances sort last instead of
        // panicking, so a degenerate feature row cannot abort a prediction.
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; data.num_classes().max(1)];
        for &(_, label) in &dists[..k] {
            votes[label as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

/// Shared SGD machinery for the linear baselines.
#[derive(Debug, Clone)]
struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearModel {
    fn zeros(num_features: usize) -> LinearModel {
        LinearModel {
            weights: vec![0.0; num_features],
            bias: 0.0,
        }
    }

    fn margin(&self, row: &[f32]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, &x)| w * x as f64)
                .sum::<f64>()
    }
}

/// Which loss the SGD linear classifier optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearLoss {
    /// Log-loss (logistic regression).
    Logistic,
    /// Squared loss on ±1 targets with L2 penalty (ridge classifier).
    Ridge,
    /// Hinge loss with L2 penalty (linear SVM).
    Hinge,
}

/// A binary linear classifier trained by seeded SGD.
///
/// Labels must be 0/1. Covers the paper's "Linear", "Ridge" and "SVM"
/// baselines through [`LinearLoss`].
#[derive(Debug, Clone)]
pub struct LinearClassifier {
    loss: LinearLoss,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    model: Option<LinearModel>,
}

impl LinearClassifier {
    /// Creates a classifier for the given loss with sensible defaults.
    pub fn new(loss: LinearLoss) -> LinearClassifier {
        LinearClassifier {
            loss,
            epochs: 120,
            // The squared loss uses a stronger base step because it is
            // later scaled by 1/max||x||^2 (vs 1/max||x|| for the others).
            learning_rate: if loss == LinearLoss::Ridge { 1.0 } else { 0.5 },
            l2: 1e-4,
            seed: 0,
            model: None,
        }
    }

    /// Logistic regression baseline.
    pub fn logistic() -> LinearClassifier {
        LinearClassifier::new(LinearLoss::Logistic)
    }

    /// Ridge classifier baseline.
    pub fn ridge() -> LinearClassifier {
        LinearClassifier::new(LinearLoss::Ridge)
    }

    /// Linear SVM baseline.
    pub fn svm() -> LinearClassifier {
        LinearClassifier::new(LinearLoss::Hinge)
    }
}

impl Classifier for LinearClassifier {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(
            data.num_classes() <= 2,
            "linear baselines are binary classifiers"
        );
        let mut model = LinearModel::zeros(data.num_features());
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut state = SplitMix64::new(self.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        // Scale the step by the largest row norm so updates contract
        // regardless of feature scale. The squared loss has an unbounded
        // gradient and needs the full 1/||x||^2 factor; the bounded-
        // gradient losses only need 1/||x||.
        let max_norm_sq = (0..data.len())
            .map(|i| 1.0 + data.row(i).iter().map(|&x| (x as f64).powi(2)).sum::<f64>())
            .fold(1.0f64, f64::max);
        let learning_rate = match self.loss {
            LinearLoss::Ridge => self.learning_rate / max_norm_sq,
            LinearLoss::Logistic | LinearLoss::Hinge => self.learning_rate / max_norm_sq.sqrt(),
        };
        for _ in 0..self.epochs {
            // Deterministic reshuffle per epoch.
            state.shuffle(&mut order);
            for &i in &order {
                let row = data.row(i);
                let y = if data.label(i) == 1 { 1.0 } else { -1.0 };
                let margin = model.margin(row);
                // d(loss)/d(margin)
                let grad = match self.loss {
                    LinearLoss::Logistic => -y / (1.0 + (y * margin).exp()),
                    LinearLoss::Ridge => margin - y,
                    LinearLoss::Hinge => {
                        if y * margin < 1.0 {
                            -y
                        } else {
                            0.0
                        }
                    }
                };
                for (w, &x) in model.weights.iter_mut().zip(row) {
                    *w -= learning_rate * (grad * x as f64 + self.l2 * *w);
                }
                model.bias -= learning_rate * grad;
            }
        }
        self.model = Some(model);
    }

    fn predict(&self, row: &[f32]) -> u32 {
        let model = self.model.as_ref().expect("predict before fit");
        u32::from(model.margin(row) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Dataset {
        // Balanced classes: label = (x >= 5) on a 10x5 grid.
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let x = (i % 10) as f32;
            let y = (i / 10) as f32;
            d.push_row(&[x, y], u32::from(x >= 5.0));
        }
        d
    }

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..20 {
            d.push_row(&[0.0, 0.0], 0);
            d.push_row(&[0.0, 1.0], 1);
            d.push_row(&[1.0, 0.0], 1);
            d.push_row(&[1.0, 1.0], 0);
        }
        d
    }

    fn accuracy(c: &dyn Classifier, d: &Dataset) -> f64 {
        (0..d.len())
            .filter(|&i| c.predict(d.row(i)) == d.label(i))
            .count() as f64
            / d.len() as f64
    }

    #[test]
    fn knn_memorizes_training_data() {
        let data = linearly_separable();
        let mut knn = KNearest::new(1);
        knn.fit(&data);
        assert!((accuracy(&knn, &data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knn_handles_xor() {
        let data = xor_data();
        let mut knn = KNearest::new(3);
        knn.fit(&data);
        assert!(accuracy(&knn, &data) > 0.99);
    }

    #[test]
    fn linear_models_learn_separable_data() {
        let data = linearly_separable();
        for mut c in [
            LinearClassifier::logistic(),
            LinearClassifier::ridge(),
            LinearClassifier::svm(),
        ] {
            c.fit(&data);
            assert!(accuracy(&c, &data) > 0.85, "{:?}", c);
        }
    }

    #[test]
    fn linear_models_fail_on_xor() {
        // This is exactly why the paper's pick is a tree ensemble.
        let data = xor_data();
        let mut c = LinearClassifier::logistic();
        c.fit(&data);
        assert!(accuracy(&c, &data) <= 0.75);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn knn_rejects_zero_k() {
        let _ = KNearest::new(0);
    }
}
