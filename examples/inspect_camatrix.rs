//! Inspecting the CA-matrix: activation, renaming and defect columns.
//!
//! Reproduces the paper's running NAND2 example: Fig. 4b (partial
//! CA-matrix), Table II (activity values and renaming) and Table III
//! (defect description columns).
//!
//! Run with: `cargo run --example inspect_camatrix`

use cell_aware::core::{Activation, CanonicalCell, PreparedCell};
use cell_aware::netlist::{spice, MosKind, Terminal};
use cell_aware::sim::Injection;

const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = spice::parse_cell(NAND2)?;
    let activation = Activation::extract(&cell)?;
    let canonical = CanonicalCell::build(&cell, &activation)?;

    println!("Table II — activity values and renaming");
    for (id, t) in cell.transistor_ids() {
        println!(
            "  {:<6} activity {:>3}  ->  {}",
            t.name(),
            activation.activity_value(id).to_string(),
            canonical.name(id)
        );
    }

    println!("\nbranch equations (level, size, equation):");
    for b in canonical.branches() {
        println!(
            "  level {}  {} transistors  {}",
            b.level,
            b.transistors.len(),
            b.equation
        );
    }

    println!(
        "\nFig. 4b — partial CA-matrix (first 8 of {} rows):",
        activation.stimuli().len()
    );
    print!("   A  B |  Z |");
    for &t in canonical.order() {
        print!("{:>5}", canonical.name(t));
    }
    println!();
    for (si, stim) in activation.stimuli().iter().enumerate().take(8) {
        let w = stim.waves();
        print!(
            "   {}  {} |  {} |",
            w[0],
            w[1],
            activation.output_waves()[si]
        );
        for &t in canonical.order() {
            let wave = activation.transistor_wave(si, t);
            let cellstr = if cell.transistor(t).kind() == MosKind::Pmos {
                format!("-{wave}")
            } else {
                format!("{wave}")
            };
            print!("{cellstr:>5}");
        }
        println!();
    }

    println!("\nTable III — defect columns for a P1 drain-source short:");
    let prepared = PreparedCell::prepare(spice::parse_cell(NAND2)?)?;
    let layout = prepared.layout();
    let mpx = prepared.cell.find_transistor("MPX").ok_or("missing MPX")?;
    let row = prepared.encode_row(
        0,
        Injection::Short {
            transistor: mpx,
            a: Terminal::Drain,
            b: Terminal::Source,
        },
    );
    let names = layout.column_names();
    for k in 0..layout.num_transistors {
        for term in [Terminal::Drain, Terminal::Gate, Terminal::Source] {
            let col = layout.defect_col(k, term);
            print!("  {}={:.0}", names[col], row[col]);
        }
    }
    println!();
    Ok(())
}
