//! Quickstart: conventional cell-aware model generation for a NAND2.
//!
//! This is the paper's Fig. 1 flow end-to-end: parse a SPICE netlist,
//! enumerate the intra-transistor defect universe, simulate every defect
//! against the exhaustive static + dynamic stimulus set, merge equivalent
//! defects, and print the resulting CA model.
//!
//! Run with: `cargo run --example quickstart`

use cell_aware::defects::{CaModel, GenerateOptions};
use cell_aware::netlist::spice;
use cell_aware::sim::Stimulus;

const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch W=300n L=30n
MPY Z B VDD VDD pch W=300n L=30n
MN10 Z A net0 VSS nch W=200n L=30n
MN11 net0 B VSS VSS nch W=200n L=30n
.ENDS
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = spice::parse_cell(NAND2)?;
    println!(
        "cell `{}`: {} inputs, {} transistors",
        cell.name(),
        cell.num_inputs(),
        cell.num_transistors()
    );

    let model = CaModel::generate(&cell, GenerateOptions::default());
    println!(
        "defect universe: {} defects, {} defect simulations run",
        model.universe.len(),
        model.defect_simulations
    );
    println!(
        "equivalence classes: {} (coverage {:.1}%)",
        model.classes.len(),
        model.coverage() * 100.0
    );

    let stimuli = Stimulus::all(cell.num_inputs());
    println!("\nclass  behaviour     size  first detecting stimuli");
    for (i, class) in model.classes.iter().enumerate() {
        let detecting: Vec<String> = class
            .row
            .ones()
            .into_iter()
            .take(4)
            .map(|s| stimuli[s].to_string())
            .collect();
        let members: Vec<String> = class
            .members
            .iter()
            .take(3)
            .map(|&d| model.universe.defect(d).label(&cell))
            .collect();
        println!(
            "D{:<4} {:<12} {:>4}  {:<24} members: {}",
            i,
            class.behavior.to_string(),
            class.size(),
            detecting.join(" "),
            members.join(", ")
        );
    }
    Ok(())
}
