//! The characterization service end to end (README "Running the
//! service").
//!
//! Starts an in-process [`Server`] on a Unix-domain socket, drives it
//! with the wire client: a ping, a characterization (led simulation), a
//! repeat of the same cell (identical bytes, resolved in the cache), a
//! `Lookup` against the journaled store, and a graceful drain. Then
//! reopens the same store under a fresh server and shows the model
//! coming back byte-identical.

use cell_aware::netlist::{generate_library, LibraryConfig, Technology};
use cell_aware::serve::{Endpoint, ModelSource, Response, ServeClient, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(6);
    let cell = lib.cells[0].cell.name().to_string();

    let dir = std::env::temp_dir().join(format!("ca-serve-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let store = dir.join("service.caj");
    let sock = dir.join("ca.sock");

    // ---- First server: a fresh store. ------------------------------
    let server = Server::start(
        ServeConfig::new(store.clone(), lib.clone()),
        &[Endpoint::Uds(sock.clone())],
    )?;
    let mut client = ServeClient::connect_uds(&sock)?;

    assert!(client.ping(7)?, "pong echoes the token");
    println!("ping -> pong");

    let first = match client.characterize("demo", &cell, 0)? {
        Response::Model {
            cell,
            source,
            degraded,
            cam,
            timing,
        } => {
            println!(
                "characterize {cell}: {} bytes, source {source:?}, degraded {degraded}",
                cam.len()
            );
            println!(
                "server-side: queue {} µs, service {} µs, journal {} µs",
                timing.queue_us, timing.service_us, timing.journal_us
            );
            assert_eq!(
                source,
                ModelSource::Fresh,
                "first request leads the simulation"
            );
            cam
        }
        other => return Err(format!("unexpected: {other:?}").into()),
    };

    match client.characterize("demo", &cell, 0)? {
        Response::Model { source, cam, .. } => {
            println!(
                "repeat request: source {source:?}, identical {}",
                cam == first
            );
            assert_eq!(cam, first);
        }
        other => return Err(format!("unexpected: {other:?}").into()),
    }

    match client.lookup(&cell)? {
        Response::Model { source, cam, .. } => {
            println!("lookup: source {source:?}, identical {}", cam == first);
            assert_eq!(source, ModelSource::Store);
            assert_eq!(cam, first);
        }
        other => return Err(format!("unexpected: {other:?}").into()),
    }

    // Graceful drain over the wire: admissions stop, in-flight work
    // finishes and journals, the socket file is removed.
    match client.drain()? {
        Response::Draining => println!("drain acknowledged"),
        other => return Err(format!("unexpected: {other:?}").into()),
    }
    server.shutdown();
    assert!(!sock.exists(), "drain removes the socket file");

    // ---- Second server: same store, no new simulation needed. ------
    let server = Server::start(ServeConfig::new(store, lib), &[Endpoint::Uds(sock.clone())])?;
    let mut client = ServeClient::connect_uds(&sock)?;
    match client.characterize("demo", &cell, 0)? {
        Response::Model { source, cam, .. } => {
            println!(
                "after restart: source {source:?}, identical {}",
                cam == first
            );
            assert_eq!(cam, first, "restart serves byte-identical bytes");
        }
        other => return Err(format!("unexpected: {other:?}").into()),
    }
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
