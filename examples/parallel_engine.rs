//! Drives the parallel characterization engine through the facade:
//! characterize a flavor-heavy library with an explicit executor and a
//! shared structure-keyed cache, then show what memoization saved.
//!
//! Output is deterministic (cache hit/miss counts included) at every
//! `CA_THREADS` value, so `diff`ing two runs is a valid probe.

use cell_aware::core::{characterize_library_with, CharCache, Executor};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::{generate_library, LibraryConfig, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Skew and VT flavors multiply every template into families of
    // sizing-only siblings — exactly the duplication the cache exploits.
    let library = generate_library(&LibraryConfig {
        skew_variants: true,
        vt_variants: vec![("LVT".into(), 0.90), ("HVT".into(), 1.10)],
        ..LibraryConfig::quick(Technology::C40)
    });

    let executor = Executor::from_env();
    let cache = CharCache::new();
    let (prepared, summary) =
        characterize_library_with(&library, GenerateOptions::default(), &executor, &cache)?;

    print!("{}", summary.render());
    let stats = cache.stats();
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate), {} rejected, {} bypassed",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.rejected,
        stats.bypassed
    );
    println!(
        "simulated {} of {} cells; the rest were remapped from structural donors",
        stats.misses,
        prepared.len()
    );
    Ok(())
}
