//! Cell-aware diagnosis of a simulated customer return.
//!
//! The paper's motivating application: a die fails on the tester; the CA
//! model turns its per-pattern pass/fail signature into a ranked list of
//! cell-internal defect candidates. Here we inject a secret defect, apply
//! the CA pattern set, and let the diagnosis recover it.
//!
//! Run with: `cargo run --example diagnose_return`

use cell_aware::defects::diagnosis::distinguishing_stimulus;
use cell_aware::defects::{diagnose, select_patterns, CaModel, GenerateOptions, Observation};
use cell_aware::netlist::{spice, Terminal};
use cell_aware::sim::{DetectionPolicy, Injection, Simulator};

const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch
MPY Z B VDD VDD pch
MN10 Z A net0 VSS nch
MN11 net0 B VSS VSS nch
.ENDS
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = spice::parse_cell(NAND2)?;
    let model = CaModel::generate(&cell, GenerateOptions::default());
    let patterns = select_patterns(&model);
    println!(
        "CA model: {} classes; pattern set: {} of {} stimuli cover all detectable classes",
        model.classes.len(),
        patterns.selected.len(),
        model.stimuli().len()
    );

    // The "silicon": a die with a secret defect — MN10 source open.
    let secret = Injection::Open {
        transistor: cell.find_transistor("MN10").ok_or("missing MN10")?,
        terminal: Terminal::Source,
    };
    let golden = Simulator::new(&cell);
    let faulty = Simulator::with_injection(&cell, secret);
    let policy = DetectionPolicy::default();
    let stimuli = model.stimuli();

    // Tester run: apply the CA pattern set, record pass/fail.
    let observations: Vec<Observation> = patterns
        .selected
        .iter()
        .map(|&s| {
            let g = golden.run(&stimuli[s]).final_value(cell.output());
            let f = faulty.run(&stimuli[s]).final_value(cell.output());
            Observation {
                stimulus: s,
                failed: policy.detects(g, f),
            }
        })
        .collect();
    println!("\ntester signature:");
    for obs in &observations {
        println!(
            "  pattern {:<4} -> {}",
            stimuli[obs.stimulus].to_string(),
            if obs.failed { "FAIL" } else { "pass" }
        );
    }

    // Adaptive diagnosis: while several classes explain the signature
    // perfectly, apply a distinguishing pattern and re-test.
    let mut observations = observations;
    let mut applied: Vec<usize> = observations.iter().map(|o| o.stimulus).collect();
    loop {
        let candidates = diagnose(&model, &observations);
        let perfect: Vec<_> = candidates
            .iter()
            .filter(|c| c.is_perfect(observations.len()))
            .collect();
        println!("\ncandidates ({} perfect):", perfect.len());
        for c in candidates.iter().take(4) {
            let class = &model.classes[c.class];
            let members: Vec<String> = class
                .members
                .iter()
                .take(3)
                .map(|&d| model.universe.defect(d).label(&cell))
                .collect();
            println!(
                "  class {:<3} matched {}/{} ({}): {} ...",
                c.class,
                c.matched,
                observations.len(),
                class.behavior,
                members.join(", ")
            );
        }
        if perfect.len() <= 1 {
            let top = perfect
                .first()
                .ok_or("no candidate explains the signature")?;
            let hit = model.classes[top.class]
                .members
                .iter()
                .any(|&d| model.universe.defect(d).injection == secret);
            println!(
                "\nunique diagnosis after {} patterns — secret defect {} the diagnosed class",
                applied.len(),
                if hit { "IS IN" } else { "is NOT in" }
            );
            break;
        }
        let extra = distinguishing_stimulus(&model, perfect[0].class, perfect[1].class, &applied)
            .ok_or("ambiguous classes are inseparable")?;
        let g = golden.run(&stimuli[extra]).final_value(cell.output());
        let f = faulty.run(&stimuli[extra]).final_value(cell.output());
        println!(
            "  -> ambiguous; applying distinguishing pattern {}",
            stimuli[extra]
        );
        observations.push(Observation {
            stimulus: extra,
            failed: policy.detects(g, f),
        });
        applied.push(extra);
    }
    Ok(())
}
