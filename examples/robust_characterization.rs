//! Fault-tolerant library characterization (README "Handling broken
//! netlists").
//!
//! Generates a 20-cell library, deliberately corrupts 5 cells with the
//! fault-injection harness, then characterizes the library robustly:
//! the broken cells land in quarantine with per-phase diagnoses while
//! the healthy 15 still produce exportable `.cam` models. A second run
//! shows the retry policy turning budget exhaustion into degraded (but
//! exportable-on-opt-in) models.

use cell_aware::core::{
    characterize_library_robust, export_cam, export_cam_with, summarize, FaultPolicy,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::corrupt::salt_library;
use cell_aware::netlist::{generate_library, LibraryConfig, Technology};
use cell_aware::sim::SimBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small library with five deliberately broken cells.
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
    lib.cells.truncate(20);
    let salted = salt_library(&mut lib, 5, 7);
    println!("salted {} of {} cells:", salted.len(), lib.len());
    for s in &salted {
        println!("  {} <- {}", s.cell, s.corruption);
    }

    // Robust characterization: skip-and-report policy.
    let outcome = characterize_library_robust(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
    )?;
    println!();
    print!("{}", outcome.quarantine.render());
    let mut summary = summarize(lib.technology.name(), &outcome.prepared);
    summary.quarantined = outcome.quarantine.len();
    println!();
    print!("{}", summary.render());
    println!(
        "exported {} .cam models from {} healthy cells",
        export_cam(&outcome.prepared).len(),
        outcome.prepared.len()
    );

    // Retry policy: a zero wall-clock budget exhausts every cell; one
    // retry (static stimuli, reduced defects) still yields models,
    // marked degraded and exported only on opt-in.
    let strangled = SimBudget {
        wall_clock: Some(std::time::Duration::ZERO),
        ..SimBudget::unlimited()
    };
    let retried = characterize_library_robust(
        &lib,
        GenerateOptions::default(),
        &strangled,
        FaultPolicy::RetryWithReducedBudget(1),
    )?;
    println!(
        "\nretry-with-reduced-budget: {} models ({} degraded), \
         default export {}, opt-in export {}",
        retried.prepared.len(),
        retried.degraded_count(),
        export_cam(&retried.prepared).len(),
        export_cam_with(&retried.prepared, true).len()
    );
    Ok(())
}
