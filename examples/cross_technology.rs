//! Cross-technology CA model prediction (the paper's headline result).
//!
//! Trains the ML flow on the synthetic 28SOI library and predicts CA
//! models for C28 cells — no defect simulation on the C28 side beyond the
//! single defect-free golden run each new cell needs anyway.
//!
//! Run with: `cargo run --release --example cross_technology`

use cell_aware::core::{MlFlow, MlFlowParams, PreparedCell};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Characterize the training library the conventional way.
    let train_lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    println!(
        "characterizing {} cells of {} ...",
        train_lib.len(),
        train_lib.technology
    );
    let corpus: Vec<PreparedCell> = train_lib
        .cells
        .iter()
        .map(|lc| PreparedCell::characterize(lc.cell.clone(), GenerateOptions::default()))
        .collect::<Result<_, _>>()?;

    // 2. Train one random forest per (inputs, transistors) group.
    let flow = MlFlow::train(&corpus, MlFlowParams::quick())?;
    println!(
        "trained {} groups: {:?}",
        flow.group_keys().len(),
        flow.group_keys()
    );

    // 3. Predict CA models for the other technology and score them
    //    against the conventional flow's ground truth.
    let eval_lib = generate_library(&LibraryConfig::quick(Technology::C28));
    let mut evaluated = 0;
    let mut above_97 = 0;
    println!("\ncell                        accuracy");
    for lc in &eval_lib.cells {
        let prepared = PreparedCell::characterize(lc.cell.clone(), GenerateOptions::default())?;
        if !flow.covers(&prepared) {
            continue;
        }
        let predicted = flow.predict(&prepared)?;
        let accuracy = prepared.accuracy_of(&predicted);
        evaluated += 1;
        if accuracy > 0.97 {
            above_97 += 1;
        }
        if evaluated <= 15 {
            println!("{:<28}{:>7.2}%", prepared.cell.name(), accuracy * 100.0);
        }
    }
    println!(
        "\n{evaluated} cells evaluated; accuracy > 97% for {:.0}% of them \
         (paper §V.A.2: 68% on C28)",
        100.0 * above_97 as f64 / evaluated.max(1) as f64
    );
    Ok(())
}
