//! The hybrid CA model generation flow (paper Fig. 7).
//!
//! A structural gate routes each new cell either to the trained ML
//! predictor (when a structurally identical or equivalent cell exists in
//! the training corpus) or to conventional simulation; simulated cells
//! are fed back into the training set.
//!
//! Run with: `cargo run --release --example hybrid_generation`

use cell_aware::core::{
    format_duration, CostModel, HybridFlow, HybridOptions, MlFlowParams, PreparedCell, Route,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on 28SOI.
    let train_lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    let corpus: Vec<PreparedCell> = train_lib
        .cells
        .iter()
        .map(|lc| PreparedCell::characterize(lc.cell.clone(), GenerateOptions::default()))
        .collect::<Result<_, _>>()?;
    let mut hybrid = HybridFlow::new(
        &corpus,
        MlFlowParams::quick(),
        CostModel::paper_calibrated(),
        HybridOptions::default(),
    )?;

    // Generate CA models for a C40 batch.
    let eval_lib = generate_library(&LibraryConfig::quick(Technology::C40));
    let cells: Vec<_> = eval_lib.cells.iter().map(|c| c.cell.clone()).collect();
    let (models, report) = hybrid.run(cells)?;

    println!("cell                          route        est. time");
    for outcome in report.outcomes.iter().take(20) {
        let route = match outcome.route {
            Route::Ml(m) => format!("ML ({m})"),
            Route::Simulated => "simulated".to_string(),
        };
        println!(
            "{:<30}{:<13}{}",
            outcome.name,
            route,
            format_duration(outcome.time_s)
        );
    }
    let (identical, equivalent, simulated) = report.route_counts();
    println!(
        "\n{} models generated: {identical} identical + {equivalent} equivalent via ML, \
         {simulated} simulated",
        models.len()
    );
    println!(
        "hybrid time {} vs conventional-only {}  ->  {:.0}% reduction \
         (paper §V.C: ~38% overall, 99.7% on the ML-routed half)",
        format_duration(report.hybrid_time_s()),
        format_duration(report.conventional_time_s()),
        report.reduction() * 100.0
    );
    Ok(())
}
