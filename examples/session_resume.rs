//! Crash-safe characterization sessions (README "Resuming an
//! interrupted run").
//!
//! Characterizes a library under a durable [`Session`]: every finished
//! cell is journaled to an on-disk store as it lands. The example then
//! simulates the morning after a crash — reopening the same store and
//! re-running the identical command — and shows the resumed run serving
//! every cell from the journal (zero new simulations), converging to
//! byte-identical `.cam` exports. Finally it edits one cell's netlist
//! and demonstrates that only that cell's stale record is evicted and
//! re-simulated.

use cell_aware::core::{
    characterize_library_robust_with_session, export_cam_with, summarize, CharCache, Executor,
    FaultPolicy, Session,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::corrupt::{corrupt_cell, Corruption};
use cell_aware::netlist::{generate_library, LibraryConfig, Technology};
use cell_aware::sim::SimBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(10);

    let dir = std::env::temp_dir().join(format!("ca-session-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let store = dir.join("campaign.caj");

    let run = |lib: &_, session: &Session| {
        characterize_library_robust_with_session(
            lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::SkipAndReport,
            &Executor::from_env(),
            &CharCache::new(),
            session,
        )
    };

    // Day one: a fresh store. Every cell simulates and is journaled.
    let session = Session::open(&store)?;
    let first = run(&lib, &session)?;
    let summary = summarize(lib.technology.name(), &first.prepared);
    println!("first run:  {} cells characterized", summary.num_cells);
    print!("{}", session.report().render());

    // Day two: same command, same store — as after a crash or requeue.
    // Every record verifies against the (unchanged) library, so nothing
    // simulates again and the exports are byte-identical.
    let session = Session::open(&store)?;
    let second = run(&lib, &session)?;
    let report = session.report();
    println!(
        "\nresumed run: {} of {} cells served from the store",
        report.reused_complete + report.reused_degraded,
        lib.len()
    );
    assert_eq!(
        export_cam_with(&first.prepared, true),
        export_cam_with(&second.prepared, true),
        "resume must be byte-identical"
    );
    println!("exports are byte-identical across the resume");

    // An edited netlist invalidates exactly its own record: the session
    // re-verifies canonical hashes before trusting anything on disk.
    lib.cells[4].cell = corrupt_cell(&lib.cells[4].cell, Corruption::DanglingGate, 1)?;
    let session = Session::open(&store)?;
    let third = run(&lib, &session)?;
    let report = session.report();
    println!(
        "\nafter editing one cell: {} stale record(s) evicted, {} reused",
        report.evicted_stale, report.reused_complete
    );
    print!("{}", third.quarantine.render());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
