//! Sharded multi-process characterization (README "Running a sharded
//! campaign").
//!
//! Partitions a library into shards, spawns one supervised worker
//! process per shard (this example binary doubles as the worker
//! executable), merges the shard journals deterministically, then
//! proves the campaign's `.cam` exports are byte-identical to a plain
//! single-process session over the same library.

use cell_aware::core::{
    characterize_library_robust_with_session, export_cam_with, CharCache, Executor, FaultPolicy,
    Session,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::{generate_library, LibraryConfig, Technology};
use cell_aware::shard::{run_campaign, CampaignConfig, Spawner};
use cell_aware::sim::SimBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Worker mode: the supervisor re-invokes this same binary with a
    // CA_SHARD_* environment describing one shard of the campaign.
    if let Some(code) = cell_aware::shard::worker::run_from_env() {
        std::process::exit(code);
    }

    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(24);

    let dir = std::env::temp_dir().join(format!("ca-shard-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // Sharded campaign: 3 supervised worker processes, deterministic
    // plan, order-independent merge, final verification pass.
    let config = CampaignConfig::new(3);
    let spawner = Spawner::current_exe(Vec::new())?;
    let campaign = run_campaign(&lib, &config, &spawner, &dir.join("campaign"))?;
    print!("{}", campaign.report.render());

    // Single-process golden over the same library.
    let golden = characterize_library_robust_with_session(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::from_env(),
        &CharCache::new(),
        &Session::open(dir.join("golden.caj"))?,
    )?;

    let sharded = export_cam_with(&campaign.outcome.prepared, true);
    let single = export_cam_with(&golden.prepared, true);
    println!();
    println!(
        "exports: {} sharded vs {} single-process, byte-identical: {}",
        sharded.len(),
        single.len(),
        sharded == single
    );
    assert_eq!(sharded, single, "campaign must match the golden");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
